//! The centralized cluster manager (§6).
//!
//! The cluster manager owns one [`LocalController`] per server, implements
//! the deflation-aware placement of §5.2 (fitness-based, optionally
//! partitioned by priority) and the three-step admission protocol of §6:
//!
//! 1. the manager picks the "best" server for the incoming VM based on the
//!    VM's size and all servers' utilisation;
//! 2. that server computes the deflation required to accommodate the VM and
//!    rejects it if any resource constraint would be violated;
//! 3. the deflation is performed and the VM is launched.
//!
//! If the chosen server rejects the VM the manager retries on the remaining
//! feasible servers; only when every server has rejected it is the VM
//! reported as a reclamation failure (the event counted by Figure 20).
//!
//! The manager can also run in **preemption mode**, the baseline current
//! clouds implement: instead of deflating resident low-priority VMs it kills
//! them (lowest priority first) until the new VM fits.

use deflate_core::error::{DeflateError, Result};
use deflate_core::placement::{
    BestFit, CosineFitness, FirstFit, PartitionScheme, PartitionedPlacement, PlacementPolicy,
    ServerView, WorstFit,
};
use deflate_core::policy::DeflationPolicy;
use deflate_core::resources::{ResourceKind, ResourceVector};
use deflate_core::vm::{ServerId, VmId, VmSpec};
use deflate_hypervisor::controller::{AdmissionOutcome, LocalController};
use deflate_hypervisor::domain::DeflationMechanism;
use deflate_hypervisor::server::SimServer;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Which placement heuristic the manager uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementKind {
    /// Cosine-similarity fitness (§5.2), the paper's default.
    CosineFitness,
    /// First-fit bin packing.
    FirstFit,
    /// Best-fit bin packing.
    BestFit,
    /// Worst-fit (most available) packing.
    WorstFit,
}

impl PlacementKind {
    fn build(&self, scheme: PartitionScheme) -> Box<dyn PlacementPolicy> {
        match self {
            PlacementKind::CosineFitness => Box::new(PartitionedPlacement::new(
                scheme,
                CosineFitness::load_balancing(),
            )),
            PlacementKind::FirstFit => Box::new(PartitionedPlacement::new(scheme, FirstFit)),
            PlacementKind::BestFit => Box::new(PartitionedPlacement::new(scheme, BestFit)),
            PlacementKind::WorstFit => Box::new(PartitionedPlacement::new(scheme, WorstFit)),
        }
    }

    /// Short name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            PlacementKind::CosineFitness => "cosine-fitness",
            PlacementKind::FirstFit => "first-fit",
            PlacementKind::BestFit => "best-fit",
            PlacementKind::WorstFit => "worst-fit",
        }
    }
}

/// How resources are reclaimed from low-priority VMs under pressure.
#[derive(Clone)]
pub enum ReclamationMode {
    /// Deflate resident VMs using the given server-level policy.
    Deflation(Arc<dyn DeflationPolicy>),
    /// Preempt (kill) resident low-priority VMs — the transient-server
    /// baseline the paper compares against in Figure 20.
    Preemption,
    /// Never deflate or preempt for arrivals; absorb provider-side capacity
    /// reclamation by live-migrating resident VMs at full size. The
    /// migration-only baseline of the transient-capacity experiments.
    MigrationOnly,
}

impl ReclamationMode {
    /// Short name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            ReclamationMode::Deflation(p) => p.name(),
            ReclamationMode::Preemption => "preemption",
            ReclamationMode::MigrationOnly => "migration-only",
        }
    }
}

impl std::fmt::Debug for ReclamationMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ReclamationMode({})", self.name())
    }
}

/// Static cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of physical servers.
    pub num_servers: usize,
    /// Per-server hardware capacity.
    pub server_capacity: ResourceVector,
    /// Placement heuristic.
    pub placement: PlacementKind,
    /// Cluster partitioning scheme (§5.2.1).
    pub partitions: PartitionScheme,
    /// Deflation mechanism used by the per-server controllers.
    pub mechanism: DeflationMechanism,
}

impl ClusterConfig {
    /// The paper's simulated cluster: `num_servers` servers of 48 CPUs /
    /// 128 GB, cosine-fitness placement, no partitions, transparent
    /// mechanisms (mechanism choice is irrelevant at cluster granularity).
    pub fn paper_default(num_servers: usize) -> Self {
        ClusterConfig {
            num_servers,
            server_capacity: crate::spec::paper_server_capacity(),
            placement: PlacementKind::CosineFitness,
            partitions: PartitionScheme::None,
            mechanism: DeflationMechanism::Transparent,
        }
    }
}

/// Result of asking the cluster to place one VM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlacementResult {
    /// Placed without disturbing anyone.
    Placed {
        /// Chosen server.
        server: ServerId,
    },
    /// Placed after deflating resident VMs.
    PlacedWithDeflation {
        /// Chosen server.
        server: ServerId,
        /// Resources reclaimed from residents.
        reclaimed: ResourceVector,
    },
    /// Placed after preempting resident VMs (preemption mode only).
    PlacedWithPreemption {
        /// Chosen server.
        server: ServerId,
        /// VMs that were killed to make room.
        preempted: Vec<VmId>,
    },
    /// No server could make room: a reclamation failure (Figure 20's event).
    Rejected,
}

impl PlacementResult {
    /// True when the VM ended up running somewhere.
    pub fn is_placed(&self) -> bool {
        !matches!(self, PlacementResult::Rejected)
    }
}

/// Aggregate admission counters maintained by the manager.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionCounters {
    /// VMs admitted without any reclamation.
    pub admitted_free: usize,
    /// VMs admitted after deflating residents.
    pub admitted_with_deflation: usize,
    /// VMs admitted after preempting residents.
    pub admitted_with_preemption: usize,
    /// VMs rejected because no server could reclaim enough resources.
    pub rejected: usize,
    /// Resident VMs killed by the preemption baseline.
    pub preempted_vms: usize,
}

impl AdmissionCounters {
    /// Total placement attempts.
    pub fn attempts(&self) -> usize {
        self.admitted_free
            + self.admitted_with_deflation
            + self.admitted_with_preemption
            + self.rejected
    }
}

/// Counters for provider-side transient-capacity dynamics (§7.4's
/// reclamation scenario): how often capacity changed hands and what the
/// cluster had to do about it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransientCounters {
    /// Capacity-reclamation events handled.
    pub reclaim_events: usize,
    /// Capacity-restitution events handled.
    pub restore_events: usize,
    /// Reclamations fully absorbed by deflating residents in place.
    pub absorbed_by_deflation: usize,
    /// VMs migrated off a shrinking server (the fallback when deflation
    /// alone cannot absorb a reclamation).
    pub migrations: usize,
    /// VMs migrated back to their origin server after a restitution.
    pub migrations_back: usize,
    /// Resident VMs destroyed because neither deflation nor migration could
    /// absorb a reclamation — the reclamation-failure event of Figure 20.
    pub reclamation_victims: usize,
}

/// One VM moved between servers by the reclamation handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationRecord {
    /// The migrated VM.
    pub vm: VmId,
    /// Server it left.
    pub from: ServerId,
    /// Server it now runs on.
    pub to: ServerId,
}

/// What a capacity reclamation / restitution did to the cluster.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CapacityChangeOutcome {
    /// VMs migrated to another server.
    pub migrated: Vec<MigrationRecord>,
    /// VMs destroyed because nothing else worked (reclamation failures).
    pub victims: Vec<VmId>,
    /// Servers whose residents' allocations may have changed (for
    /// allocation-history recording by the simulator).
    pub touched: Vec<ServerId>,
}

impl CapacityChangeOutcome {
    fn touch(&mut self, server: ServerId) {
        if !self.touched.contains(&server) {
            self.touched.push(server);
        }
    }
}

/// The centralized cluster manager.
pub struct ClusterManager {
    controllers: Vec<LocalController>,
    placement: Box<dyn PlacementPolicy>,
    partitions: PartitionScheme,
    mechanism: DeflationMechanism,
    base_capacity: ResourceVector,
    mode: ReclamationMode,
    vm_location: HashMap<VmId, usize>,
    /// First server each migrated VM ran on, for migrate-back after a
    /// capacity restitution.
    migration_origin: HashMap<VmId, usize>,
    counters: AdmissionCounters,
    transient: TransientCounters,
}

impl ClusterManager {
    /// Build a cluster with the given configuration and reclamation mode.
    pub fn new(config: &ClusterConfig, mode: ReclamationMode) -> Self {
        let partition_assignment = config.partitions.assign_servers(config.num_servers);
        let policy: Arc<dyn DeflationPolicy> = match &mode {
            ReclamationMode::Deflation(p) => Arc::clone(p),
            // The preemption and migration-only baselines never deflate for
            // arrivals, but the local controllers need a policy for
            // reinflation after departures.
            ReclamationMode::Preemption | ReclamationMode::MigrationOnly => {
                Arc::new(deflate_core::policy::ProportionalDeflation::default())
            }
        };
        let controllers: Vec<LocalController> = (0..config.num_servers)
            .map(|i| {
                let server = SimServer::new(ServerId(i as u32), config.server_capacity)
                    .with_partition(partition_assignment[i]);
                LocalController::new(server, Arc::clone(&policy), config.mechanism)
            })
            .collect();
        ClusterManager {
            controllers,
            placement: config.placement.build(config.partitions),
            partitions: config.partitions,
            mechanism: config.mechanism,
            base_capacity: config.server_capacity,
            mode,
            vm_location: HashMap::new(),
            migration_origin: HashMap::new(),
            counters: AdmissionCounters::default(),
            transient: TransientCounters::default(),
        }
    }

    /// Number of servers in the cluster.
    pub fn num_servers(&self) -> usize {
        self.controllers.len()
    }

    /// Admission counters so far.
    pub fn counters(&self) -> AdmissionCounters {
        self.counters
    }

    /// Iterate over the underlying servers.
    pub fn servers(&self) -> impl Iterator<Item = &SimServer> {
        self.controllers.iter().map(|c| c.server())
    }

    /// Current placement views of all servers.
    pub fn views(&self) -> Vec<ServerView> {
        self.controllers.iter().map(|c| c.server().view()).collect()
    }

    /// The server index currently hosting a VM.
    pub fn locate(&self, vm: VmId) -> Option<ServerId> {
        self.vm_location
            .get(&vm)
            .map(|&i| self.controllers[i].server().id)
    }

    /// The VM's current CPU allocation as a fraction of its maximum (1.0 when
    /// undeflated); `None` if the VM is not running.
    pub fn cpu_allocation_fraction(&self, vm: VmId) -> Option<f64> {
        let &idx = self.vm_location.get(&vm)?;
        let domain = self.controllers[idx].server().domain(vm)?;
        let max = domain.spec.max_allocation[ResourceKind::Cpu];
        if max <= 0.0 {
            return Some(1.0);
        }
        Some(domain.effective_allocation()[ResourceKind::Cpu] / max)
    }

    /// All VMs currently running, with their CPU allocation fractions.
    pub fn running_allocation_fractions(&self) -> Vec<(VmId, f64)> {
        let mut out = Vec::new();
        for controller in &self.controllers {
            for domain in controller.server().domains() {
                let max = domain.spec.max_allocation[ResourceKind::Cpu];
                let frac = if max <= 0.0 {
                    1.0
                } else {
                    domain.effective_allocation()[ResourceKind::Cpu] / max
                };
                out.push((domain.spec.id, frac));
            }
        }
        out
    }

    /// CPU allocation fractions of the VMs resident on one server. Used by
    /// the simulator to record allocation changes touching only the server
    /// affected by an event, which keeps large trace replays cheap.
    pub fn allocation_fractions_on(&self, server: ServerId) -> Vec<(VmId, f64)> {
        let idx = self.server_index(server);
        if idx >= self.controllers.len() {
            return Vec::new();
        }
        self.controllers[idx]
            .server()
            .domains()
            .map(|domain| {
                let max = domain.spec.max_allocation[ResourceKind::Cpu];
                let frac = if max <= 0.0 {
                    1.0
                } else {
                    domain.effective_allocation()[ResourceKind::Cpu] / max
                };
                (domain.spec.id, frac)
            })
            .collect()
    }

    /// Cluster-wide overcommitment: committed allocations over hardware
    /// capacity, as a fraction above 1.0 (0.0 = not overcommitted), measured
    /// on the CPU dimension.
    pub fn current_overcommitment(&self) -> f64 {
        let committed: f64 = self
            .controllers
            .iter()
            .map(|c| c.server().committed()[ResourceKind::Cpu])
            .sum();
        let capacity: f64 = self
            .controllers
            .iter()
            .map(|c| c.server().capacity[ResourceKind::Cpu])
            .sum();
        if capacity <= 0.0 {
            0.0
        } else {
            (committed / capacity - 1.0).max(0.0)
        }
    }

    /// Admission counters for transient-capacity events so far.
    pub fn transient_counters(&self) -> TransientCounters {
        self.transient
    }

    /// The available-capacity fraction a server currently runs at (1.0 when
    /// the provider has not reclaimed anything), measured against the
    /// configured hardware capacity on the CPU dimension.
    pub fn capacity_fraction(&self, server: ServerId) -> f64 {
        let idx = self.server_index(server);
        let base = self.base_capacity[deflate_core::resources::ResourceKind::Cpu];
        if idx >= self.controllers.len() || base <= 0.0 {
            return 1.0;
        }
        self.controllers[idx].server().capacity[deflate_core::resources::ResourceKind::Cpu] / base
    }

    /// Place a new VM, reclaiming resources if necessary.
    pub fn place_vm(&mut self, spec: VmSpec) -> PlacementResult {
        let result = match self.mode.clone() {
            ReclamationMode::Deflation(_) => self.place_with_deflation(&spec),
            ReclamationMode::Preemption => self.place_with_preemption(&spec),
            ReclamationMode::MigrationOnly => self.place_without_reclamation(&spec),
        };
        match &result {
            PlacementResult::Placed { .. } => self.counters.admitted_free += 1,
            PlacementResult::PlacedWithDeflation { .. } => {
                self.counters.admitted_with_deflation += 1
            }
            PlacementResult::PlacedWithPreemption { preempted, .. } => {
                self.counters.admitted_with_preemption += 1;
                self.counters.preempted_vms += preempted.len();
            }
            PlacementResult::Rejected => self.counters.rejected += 1,
        }
        result
    }

    fn server_index(&self, id: ServerId) -> usize {
        id.0 as usize
    }

    fn place_with_deflation(&mut self, spec: &VmSpec) -> PlacementResult {
        let mut excluded: Vec<ServerId> = Vec::new();
        loop {
            let views: Vec<ServerView> = self
                .views()
                .into_iter()
                .filter(|v| !excluded.contains(&v.id))
                .collect();
            let Some(decision) = self.placement.place(spec, &views) else {
                return PlacementResult::Rejected;
            };
            let idx = self.server_index(decision.server);
            match self.controllers[idx].try_admit(spec.clone()) {
                Ok(AdmissionOutcome::AdmittedWithoutDeflation) => {
                    self.vm_location.insert(spec.id, idx);
                    return PlacementResult::Placed {
                        server: decision.server,
                    };
                }
                Ok(AdmissionOutcome::AdmittedWithDeflation { reclaimed }) => {
                    self.vm_location.insert(spec.id, idx);
                    return PlacementResult::PlacedWithDeflation {
                        server: decision.server,
                        reclaimed,
                    };
                }
                Ok(AdmissionOutcome::Rejected { .. }) => {
                    excluded.push(decision.server);
                }
                Err(_) => {
                    excluded.push(decision.server);
                }
            }
            if excluded.len() >= self.controllers.len() {
                return PlacementResult::Rejected;
            }
        }
    }

    fn place_with_preemption(&mut self, spec: &VmSpec) -> PlacementResult {
        let mut excluded: Vec<ServerId> = Vec::new();
        loop {
            let views: Vec<ServerView> = self
                .views()
                .into_iter()
                .filter(|v| !excluded.contains(&v.id))
                .collect();
            let Some(decision) = self.placement.place(spec, &views) else {
                return PlacementResult::Rejected;
            };
            let idx = self.server_index(decision.server);
            // Preempt lowest-priority deflatable VMs until the new VM fits.
            let mut preempted = Vec::new();
            loop {
                let server = self.controllers[idx].server();
                if spec.max_allocation.fits_within(&server.free()) {
                    break;
                }
                let victim = server
                    .domains()
                    .filter(|d| d.spec.deflatable)
                    .min_by(|a, b| {
                        a.spec
                            .priority
                            .value()
                            .partial_cmp(&b.spec.priority.value())
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|d| d.spec.id);
                let Some(victim) = victim else { break };
                let _ = self.controllers[idx].server_mut().destroy_domain(victim);
                self.vm_location.remove(&victim);
                preempted.push(victim);
            }
            let server = self.controllers[idx].server();
            if spec.max_allocation.fits_within(&server.free()) {
                let mechanism = DeflationMechanism::Transparent;
                if self.controllers[idx]
                    .server_mut()
                    .create_domain(spec.clone(), mechanism)
                    .is_ok()
                {
                    self.vm_location.insert(spec.id, idx);
                    return if preempted.is_empty() {
                        PlacementResult::Placed {
                            server: decision.server,
                        }
                    } else {
                        self.counters.preempted_vms += 0; // counted by caller
                        PlacementResult::PlacedWithPreemption {
                            server: decision.server,
                            preempted,
                        }
                    };
                }
            }
            excluded.push(decision.server);
            if excluded.len() >= self.controllers.len() {
                return PlacementResult::Rejected;
            }
        }
    }

    /// Place a VM only where its full allocation fits free capacity — no
    /// deflation, no preemption (the migration-only baseline's admission
    /// path).
    fn place_without_reclamation(&mut self, spec: &VmSpec) -> PlacementResult {
        match self.admit_on_best(spec, Vec::new(), false) {
            Some(idx) => {
                self.vm_location.insert(spec.id, idx);
                PlacementResult::Placed {
                    server: self.controllers[idx].server().id,
                }
            }
            None => PlacementResult::Rejected,
        }
    }

    /// Handle a provider-side **capacity reclamation** at one server: shrink
    /// it to `available_fraction` of its hardware capacity and absorb the
    /// shock in mode-dependent order.
    ///
    /// * **Deflation mode** (the paper's proposal): first deflate residents
    ///   via the configured [`DeflationPolicy`]; if the policy's headroom is
    ///   exhausted, fall back to deflation-aware **migration** of the
    ///   most-deflated VMs to other servers; only when neither suffices are
    ///   the remaining over-capacity VMs destroyed and counted as
    ///   reclamation failures.
    /// * **Preemption mode**: kill lowest-priority residents until the
    ///   remainder fits (today's transient offerings).
    /// * **Migration-only mode**: migrate residents at full size to servers
    ///   with room, killing whatever cannot be placed.
    pub fn reclaim_capacity(
        &mut self,
        server: ServerId,
        available_fraction: f64,
    ) -> CapacityChangeOutcome {
        let idx = self.server_index(server);
        let mut outcome = CapacityChangeOutcome::default();
        if idx >= self.controllers.len() {
            return outcome;
        }
        let fraction = available_fraction.clamp(0.0, 1.0);
        self.transient.reclaim_events += 1;
        outcome.touch(server);
        self.controllers[idx]
            .server_mut()
            .set_capacity(self.base_capacity * fraction);
        self.absorb_overage(idx, &mut outcome);
        // Whatever room deflation/migration/preemption left is handed back
        // to the surviving residents.
        self.controllers[idx].reinflate();
        debug_assert!(self.controllers[idx]
            .server()
            .check_capacity_invariant()
            .is_ok());
        outcome
    }

    /// Restore the capacity invariant of a server whose capacity was just
    /// changed, in mode-dependent order: deflation mode deflates first and
    /// falls back to migration then eviction; migration-only migrates then
    /// evicts; preemption evicts straight away. A no-op when the residents
    /// already fit.
    fn absorb_overage(&mut self, idx: usize, outcome: &mut CapacityChangeOutcome) {
        if self.controllers[idx]
            .server()
            .check_capacity_invariant()
            .is_ok()
        {
            return;
        }
        match self.mode.clone() {
            ReclamationMode::Deflation(_) => {
                if self.controllers[idx].deflate_into_capacity().is_zero() {
                    self.transient.absorbed_by_deflation += 1;
                    return;
                }
                self.migrate_until_fits(idx, true, outcome);
                self.kill_until_fits(idx, outcome);
            }
            ReclamationMode::MigrationOnly => {
                self.migrate_until_fits(idx, false, outcome);
                self.kill_until_fits(idx, outcome);
            }
            ReclamationMode::Preemption => {
                self.kill_until_fits(idx, outcome);
            }
        }
    }

    /// Handle a provider-side **capacity restitution** at one server: grow
    /// it back to `available_fraction` of its hardware capacity, reinflate
    /// residents into the returned room and — when `migrate_back` is set —
    /// pull previously displaced VMs back to this, their origin, server.
    pub fn restore_capacity(
        &mut self,
        server: ServerId,
        available_fraction: f64,
        migrate_back: bool,
    ) -> CapacityChangeOutcome {
        let idx = self.server_index(server);
        let mut outcome = CapacityChangeOutcome::default();
        if idx >= self.controllers.len() {
            return outcome;
        }
        let fraction = available_fraction.clamp(0.0, 1.0);
        self.transient.restore_events += 1;
        self.controllers[idx].restore_capacity(self.base_capacity * fraction);
        outcome.touch(server);
        // A "restitution" to a fraction below the current usage is really a
        // reclamation in disguise (e.g. a hand-built schedule with a
        // mislabelled direction): absorb it the same way rather than leaving
        // the server over capacity, and hand any room migration freed back
        // to the surviving residents.
        if self.controllers[idx]
            .server()
            .check_capacity_invariant()
            .is_err()
        {
            self.absorb_overage(idx, &mut outcome);
            self.controllers[idx].reinflate();
        }

        if migrate_back {
            let displaced: Vec<VmId> = self
                .migration_origin
                .iter()
                .filter(|&(vm, &origin)| {
                    origin == idx && self.vm_location.get(vm).is_some_and(|&cur| cur != idx)
                })
                .map(|(&vm, _)| vm)
                .collect();
            // Deterministic order: lowest VM id first.
            let mut displaced = displaced;
            displaced.sort();
            for vm in displaced {
                let Some(&current) = self.vm_location.get(&vm) else {
                    continue;
                };
                let Some(domain) = self.controllers[current].server().domain(vm) else {
                    continue;
                };
                let spec = domain.spec.clone();
                // Only move back when the VM fits its origin at full size —
                // a migrate-back must never force new deflation.
                if !spec
                    .max_allocation
                    .fits_within(&self.controllers[idx].server().free())
                {
                    continue;
                }
                if self.controllers[current].on_departure(vm).is_err() {
                    continue;
                }
                if self.controllers[idx]
                    .server_mut()
                    .create_domain(spec, self.mechanism)
                    .is_ok()
                {
                    self.vm_location.insert(vm, idx);
                    self.migration_origin.remove(&vm);
                    self.transient.migrations_back += 1;
                    outcome.migrated.push(MigrationRecord {
                        vm,
                        from: self.controllers[current].server().id,
                        to: server,
                    });
                    outcome.touch(self.controllers[current].server().id);
                } else {
                    // The domain was destroyed but could not be recreated —
                    // should not happen since we checked the fit, but account
                    // for it rather than losing the VM silently. The old
                    // server's residents were reinflated by the departure,
                    // so its allocations must be re-recorded too.
                    self.vm_location.remove(&vm);
                    self.migration_origin.remove(&vm);
                    self.transient.reclamation_victims += 1;
                    outcome.victims.push(vm);
                    outcome.touch(self.controllers[current].server().id);
                }
            }
        }
        debug_assert!(self.controllers[idx]
            .server()
            .check_capacity_invariant()
            .is_ok());
        outcome
    }

    /// Migrate residents off an over-capacity server until its effective
    /// usage fits. Candidates are tried most-deflated first (deflatable VMs
    /// ordered by ascending allocation fraction, then on-demand VMs), and
    /// each is re-admitted on the best other server — deflating that
    /// server's residents when `deflation_aware` is set.
    fn migrate_until_fits(
        &mut self,
        source: usize,
        deflation_aware: bool,
        outcome: &mut CapacityChangeOutcome,
    ) {
        let source_id = self.controllers[source].server().id;
        let mut attempted: Vec<VmId> = Vec::new();
        loop {
            if self.controllers[source]
                .server()
                .check_capacity_invariant()
                .is_ok()
            {
                return;
            }
            // Pick the most-deflated untried resident (deflatable first).
            let candidate = {
                let server = self.controllers[source].server();
                let mut best: Option<(bool, f64, VmId)> = None;
                for domain in server.domains() {
                    if attempted.contains(&domain.spec.id) {
                        continue;
                    }
                    let max = domain.spec.max_allocation.total();
                    let frac = if max <= 0.0 {
                        1.0
                    } else {
                        domain.effective_allocation().total() / max
                    };
                    // Sort key: on-demand after deflatable, then by
                    // allocation fraction, then by id for determinism.
                    let key = (!domain.spec.deflatable, frac, domain.spec.id);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
                best.map(|(_, _, id)| id)
            };
            let Some(vm) = candidate else { return };
            attempted.push(vm);
            let Some(spec) = self.controllers[source]
                .server()
                .domain(vm)
                .map(|d| d.spec.clone())
            else {
                continue;
            };
            let Some(target) = self.admit_on_best(&spec, vec![source_id], deflation_aware) else {
                continue;
            };
            // The VM now exists on the target; destroy the source copy
            // without reinflating yet (the server is still over capacity).
            let _ = self.controllers[source].server_mut().destroy_domain(vm);
            self.vm_location.insert(vm, target);
            self.migration_origin.entry(vm).or_insert(source);
            self.transient.migrations += 1;
            outcome.migrated.push(MigrationRecord {
                vm,
                from: source_id,
                to: self.controllers[target].server().id,
            });
            outcome.touch(self.controllers[target].server().id);
        }
    }

    /// Admit a VM on the best server outside `excluded`, optionally
    /// deflating the target's residents. Returns the chosen server index.
    /// The caller is responsible for `vm_location` bookkeeping.
    fn admit_on_best(
        &mut self,
        spec: &VmSpec,
        mut excluded: Vec<ServerId>,
        deflation_aware: bool,
    ) -> Option<usize> {
        loop {
            let views: Vec<ServerView> = self
                .views()
                .into_iter()
                .filter(|v| !excluded.contains(&v.id))
                .collect();
            if views.is_empty() {
                return None;
            }
            let decision = self.placement.place(spec, &views)?;
            let idx = self.server_index(decision.server);
            let admitted = if deflation_aware {
                matches!(
                    self.controllers[idx].try_admit(spec.clone()),
                    Ok(AdmissionOutcome::AdmittedWithoutDeflation)
                        | Ok(AdmissionOutcome::AdmittedWithDeflation { .. })
                )
            } else {
                spec.max_allocation
                    .fits_within(&self.controllers[idx].server().free())
                    && self.controllers[idx]
                        .server_mut()
                        .create_domain(spec.clone(), self.mechanism)
                        .is_ok()
            };
            if admitted {
                return Some(idx);
            }
            excluded.push(decision.server);
            if excluded.len() >= self.controllers.len() {
                return None;
            }
        }
    }

    /// Destroy residents of an over-capacity server until the rest fits:
    /// the last-resort path, counted as reclamation failures. Victims are
    /// chosen lowest-priority first among deflatable VMs, then on-demand
    /// VMs, ids breaking ties.
    fn kill_until_fits(&mut self, idx: usize, outcome: &mut CapacityChangeOutcome) {
        while self.controllers[idx]
            .server()
            .check_capacity_invariant()
            .is_err()
        {
            let victim = self.controllers[idx]
                .server()
                .domains()
                .map(|d| (!d.spec.deflatable, d.spec.priority.value(), d.spec.id))
                .min_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)).then(a.2.cmp(&b.2)))
                .map(|(_, _, id)| id);
            let Some(victim) = victim else { return };
            let _ = self.controllers[idx].server_mut().destroy_domain(victim);
            self.vm_location.remove(&victim);
            self.migration_origin.remove(&victim);
            self.transient.reclamation_victims += 1;
            outcome.victims.push(victim);
        }
    }

    /// Handle a VM departure: remove its domain and reinflate the residents
    /// of the server it was on.
    pub fn remove_vm(&mut self, vm: VmId) -> Result<()> {
        let idx = self
            .vm_location
            .remove(&vm)
            .ok_or(DeflateError::UnknownVm(vm))?;
        self.migration_origin.remove(&vm);
        self.controllers[idx].on_departure(vm)
    }

    /// The partition scheme in effect (used by experiment harnesses for
    /// reporting).
    pub fn partition_scheme(&self) -> PartitionScheme {
        self.partitions
    }

    /// Check every server's capacity invariant (panics in debug builds when
    /// violated; used by tests).
    pub fn check_invariants(&self) -> bool {
        self.controllers
            .iter()
            .all(|c| c.server().check_capacity_invariant().is_ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deflate_core::policy::ProportionalDeflation;
    use deflate_core::vm::{Priority, VmClass};

    fn small_cluster(mode: ReclamationMode) -> ClusterManager {
        let config = ClusterConfig {
            num_servers: 2,
            server_capacity: ResourceVector::cpu_mem(16_000.0, 32_768.0),
            placement: PlacementKind::CosineFitness,
            partitions: PartitionScheme::None,
            mechanism: DeflationMechanism::Transparent,
        };
        ClusterManager::new(&config, mode)
    }

    fn deflation_mode() -> ReclamationMode {
        ReclamationMode::Deflation(Arc::new(ProportionalDeflation::default()))
    }

    fn vm(id: u64, cores: f64, priority: f64) -> VmSpec {
        VmSpec::deflatable(
            VmId(id),
            VmClass::Interactive,
            ResourceVector::cpu_mem(cores * 1000.0, 8_192.0),
        )
        .with_priority(Priority::new(priority))
    }

    #[test]
    fn places_vms_across_servers() {
        let mut cluster = small_cluster(deflation_mode());
        for i in 0..4 {
            let result = cluster.place_vm(vm(i, 8.0, 0.5));
            assert!(result.is_placed(), "VM {i} not placed: {result:?}");
        }
        assert!(cluster.check_invariants());
        // 4 × 8 cores over 2 × 16-core servers: both servers are full and
        // balanced.
        let views = cluster.views();
        assert_eq!(views.len(), 2);
        for v in views {
            assert!(v.used.cpu() >= 15_999.0);
        }
        assert_eq!(cluster.counters().attempts(), 4);
        assert_eq!(cluster.counters().rejected, 0);
    }

    #[test]
    fn deflation_mode_overcommits_instead_of_rejecting() {
        let mut cluster = small_cluster(deflation_mode());
        for i in 0..4 {
            assert!(cluster.place_vm(vm(i, 8.0, 0.5)).is_placed());
        }
        // Cluster is full; a fifth VM forces deflation.
        let result = cluster.place_vm(vm(5, 8.0, 0.5));
        assert!(matches!(
            result,
            PlacementResult::PlacedWithDeflation { .. }
        ));
        assert!(cluster.check_invariants());
        assert!(cluster.current_overcommitment() > 0.2);
        assert_eq!(cluster.counters().admitted_with_deflation, 1);
        // The deflated VMs report allocation fractions below 1.
        let fractions = cluster.running_allocation_fractions();
        assert!(fractions.iter().any(|(_, f)| *f < 1.0));
    }

    #[test]
    fn rejects_when_nothing_can_be_reclaimed() {
        let mut cluster = small_cluster(deflation_mode());
        for i in 0..4 {
            let od = VmSpec::on_demand(
                VmId(i),
                VmClass::Unknown,
                ResourceVector::cpu_mem(16_000.0, 32_768.0),
            );
            // Two fit (one per server), two are rejected.
            cluster.place_vm(od);
        }
        let result = cluster.place_vm(vm(10, 4.0, 0.5));
        assert_eq!(result, PlacementResult::Rejected);
        assert!(cluster.counters().rejected >= 1);
    }

    #[test]
    fn preemption_mode_kills_low_priority_vms() {
        let mut cluster = small_cluster(ReclamationMode::Preemption);
        for i in 0..4 {
            assert!(cluster.place_vm(vm(i, 8.0, 0.2)).is_placed());
        }
        let result = cluster.place_vm(vm(10, 8.0, 0.9));
        match result {
            PlacementResult::PlacedWithPreemption { preempted, .. } => {
                assert!(!preempted.is_empty());
                // Preempted VMs are gone from the location map.
                for vm in &preempted {
                    assert!(cluster.locate(*vm).is_none());
                }
            }
            other => panic!("expected preemption, got {other:?}"),
        }
        assert!(cluster.counters().preempted_vms >= 1);
        assert!(cluster.check_invariants());
    }

    #[test]
    fn reclaim_deflates_and_restore_reinflates_residents() {
        let mut cluster = small_cluster(deflation_mode());
        for i in 0..4 {
            assert!(cluster.place_vm(vm(i, 8.0, 0.5)).is_placed());
        }
        // Halve server 0: both servers are full, so nothing can migrate and
        // the residents must be deflated in place.
        let outcome = cluster.reclaim_capacity(ServerId(0), 0.5);
        assert!(
            outcome.victims.is_empty(),
            "deflation should absorb: {outcome:?}"
        );
        assert!(cluster.check_invariants());
        assert!((cluster.capacity_fraction(ServerId(0)) - 0.5).abs() < 1e-9);
        assert!(cluster
            .running_allocation_fractions()
            .iter()
            .any(|(_, f)| *f < 1.0 - 1e-9));
        assert_eq!(cluster.transient_counters().reclaim_events, 1);
        assert_eq!(cluster.transient_counters().absorbed_by_deflation, 1);
        // Give it back: everyone reinflates to full.
        cluster.restore_capacity(ServerId(0), 1.0, false);
        assert!(cluster
            .running_allocation_fractions()
            .iter()
            .all(|(_, f)| (*f - 1.0).abs() < 1e-6));
    }

    #[test]
    fn restore_below_usage_behaves_like_reclaim() {
        let mut cluster = small_cluster(deflation_mode());
        for i in 0..4 {
            assert!(cluster.place_vm(vm(i, 8.0, 0.5)).is_placed());
        }
        // A "restore" to half capacity while residents use all of it is a
        // reclamation in disguise: the invariant must still hold afterwards.
        let outcome = cluster.restore_capacity(ServerId(0), 0.5, false);
        assert!(cluster.check_invariants());
        assert!(outcome.victims.is_empty());
        assert!(cluster
            .running_allocation_fractions()
            .iter()
            .any(|(_, f)| *f < 1.0 - 1e-9));
    }

    #[test]
    fn departures_reinflate_and_allow_reuse() {
        let mut cluster = small_cluster(deflation_mode());
        for i in 0..5 {
            assert!(cluster.place_vm(vm(i, 8.0, 0.5)).is_placed());
        }
        // Remove two VMs; the rest should reinflate back to full size.
        cluster.remove_vm(VmId(0)).unwrap();
        cluster.remove_vm(VmId(1)).unwrap();
        let fractions = cluster.running_allocation_fractions();
        assert_eq!(fractions.len(), 3);
        assert!(fractions.iter().all(|(_, f)| (*f - 1.0).abs() < 1e-6));
        // Removing an unknown VM errors.
        assert!(cluster.remove_vm(VmId(99)).is_err());
    }

    #[test]
    fn locate_and_allocation_fraction() {
        let mut cluster = small_cluster(deflation_mode());
        cluster.place_vm(vm(1, 4.0, 0.5));
        assert!(cluster.locate(VmId(1)).is_some());
        assert_eq!(cluster.cpu_allocation_fraction(VmId(1)), Some(1.0));
        assert_eq!(cluster.cpu_allocation_fraction(VmId(42)), None);
    }

    #[test]
    fn names_and_config() {
        assert_eq!(PlacementKind::CosineFitness.name(), "cosine-fitness");
        assert_eq!(PlacementKind::FirstFit.name(), "first-fit");
        assert_eq!(deflation_mode().name(), "proportional-min-aware");
        assert_eq!(ReclamationMode::Preemption.name(), "preemption");
        let cfg = ClusterConfig::paper_default(40);
        assert_eq!(cfg.num_servers, 40);
        assert_eq!(cfg.server_capacity.cpu(), 48_000.0);
    }
}
