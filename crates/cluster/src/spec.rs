//! Conversion from trace VMs to cluster workload items, and cluster-sizing
//! helpers.
//!
//! The cluster simulation (§7.1.2) uses the Azure trace to determine "the
//! starting and stopping times of VMs, their size (aka resource vectors), and
//! CPU utilization history", treats interactive VMs as deflatable and the
//! rest as on-demand, derives 4 priority levels from the 95th-percentile CPU
//! utilisation, and sizes the cluster by first finding "the minimum cluster
//! size capable of running all VMs without any preemptions or
//! admission-controlled rejections", then shrinking it to reach a target
//! overcommitment level.

use deflate_core::resources::ResourceVector;
use deflate_core::vm::{Priority, VmClass, VmSpec};
use deflate_traces::azure::AzureVmTrace;
use deflate_traces::timeseries::TimeSeries;
use serde::{Deserialize, Serialize};

/// How a deflatable VM's minimum allocation (`m_i`) is derived.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MinAllocationRule {
    /// No floor: VMs can be deflated to (nearly) zero.
    None,
    /// Priority-derived floor `m_i = π_i · M_i` (§5.1.2).
    PriorityTimesMax,
    /// Fixed fraction of the maximum allocation.
    Fraction(f64),
}

impl MinAllocationRule {
    fn apply(&self, max: ResourceVector, priority: Priority) -> ResourceVector {
        match self {
            MinAllocationRule::None => ResourceVector::ZERO,
            MinAllocationRule::PriorityTimesMax => max * priority.value(),
            MinAllocationRule::Fraction(f) => max * f.clamp(0.0, 1.0),
        }
    }
}

/// One VM of the cluster workload: its spec, lifetime and utilisation
/// history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadVm {
    /// The VM specification handed to the cluster manager at arrival.
    pub spec: VmSpec,
    /// Arrival time in seconds from the start of the simulation.
    pub arrival_secs: f64,
    /// Departure time in seconds.
    pub departure_secs: f64,
    /// CPU utilisation history (relative to the full allocation), used for
    /// throughput-loss accounting.
    pub cpu_util: TimeSeries,
}

impl WorkloadVm {
    /// Build a workload VM from an Azure trace VM.
    ///
    /// Interactive VMs become deflatable with a priority derived from their
    /// 95th-percentile CPU usage; batch and unknown VMs become on-demand
    /// (§7.1.2). The Azure dataset does not report disk/network needs, so the
    /// cluster bin-packs on CPU and memory only ("we consider each VM's CPU
    /// core count and memory size for bin-packing").
    pub fn from_azure(trace: &AzureVmTrace, min_rule: MinAllocationRule) -> Self {
        let size = ResourceVector::cpu_mem(trace.size.cpu(), trace.size.memory());
        let spec = if trace.deflatable() {
            let priority = trace.priority();
            let min = min_rule.apply(size, priority);
            VmSpec::deflatable(trace.vm_id, VmClass::Interactive, size)
                .with_priority(priority)
                .with_min_allocation(min)
        } else {
            VmSpec::on_demand(trace.vm_id, trace.class, size)
        };
        WorkloadVm {
            spec,
            arrival_secs: trace.start_secs,
            departure_secs: trace.end_secs(),
            cpu_util: trace.cpu_util.clone(),
        }
    }

    /// Lifetime in hours (used by revenue accounting).
    pub fn lifetime_hours(&self) -> f64 {
        (self.departure_secs - self.arrival_secs).max(0.0) / 3600.0
    }

    /// Owned heap bytes behind the workload entry (the utilisation trace).
    /// Feeds the engine's `mem.workload` gauge.
    pub fn accounted_bytes(&self) -> u64 {
        self.cpu_util.accounted_bytes()
    }
}

/// Convert a whole Azure trace into a workload, sorted by arrival time.
pub fn workload_from_azure(
    traces: &[AzureVmTrace],
    min_rule: MinAllocationRule,
) -> Vec<WorkloadVm> {
    let mut vms: Vec<WorkloadVm> = traces
        .iter()
        .map(|t| WorkloadVm::from_azure(t, min_rule))
        .collect();
    vms.sort_by(|a, b| {
        a.arrival_secs
            .partial_cmp(&b.arrival_secs)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    vms
}

/// The peak simultaneous committed allocation of a workload — the capacity a
/// cluster needs to run every VM undeflated.
pub fn peak_committed(vms: &[WorkloadVm]) -> ResourceVector {
    // Sweep arrival/departure events in time order, tracking the running sum.
    let mut events: Vec<(f64, ResourceVector, bool)> = Vec::with_capacity(vms.len() * 2);
    for vm in vms {
        events.push((vm.arrival_secs, vm.spec.max_allocation, true));
        events.push((vm.departure_secs, vm.spec.max_allocation, false));
    }
    events.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            // Process departures before arrivals at the same instant.
            .then(a.2.cmp(&b.2))
    });
    let mut current = ResourceVector::ZERO;
    let mut peak = ResourceVector::ZERO;
    for (_, alloc, is_arrival) in events {
        if is_arrival {
            current += alloc;
            peak = peak.max(&current);
        } else {
            current = current.saturating_sub(&alloc);
        }
    }
    peak
}

/// The number of servers of the given capacity needed to hold the peak
/// committed allocation without any overcommitment (the baseline, 0 %
/// overcommitment cluster of §7.1.2).
pub fn min_cluster_size(vms: &[WorkloadVm], server_capacity: ResourceVector) -> usize {
    let peak = peak_committed(vms);
    let mut needed = 1usize;
    for (kind, cap) in server_capacity.iter() {
        if cap > 0.0 {
            needed = needed.max((peak[kind] / cap).ceil() as usize);
        }
    }
    needed.max(1)
}

/// The number of servers that yields (approximately) the requested
/// overcommitment level: `overcommitment = peak committed / capacity − 1`.
pub fn servers_for_overcommitment(
    vms: &[WorkloadVm],
    server_capacity: ResourceVector,
    overcommitment: f64,
) -> usize {
    let baseline = min_cluster_size(vms, server_capacity) as f64;
    let factor = 1.0 + overcommitment.max(0.0);
    ((baseline / factor).floor() as usize).max(1)
}

/// The number of servers that yields the requested overcommitment level
/// against the *mean available* capacity of a transient cluster: a provider
/// that reclaims capacity with time-average availability `a` effectively
/// offers `a · capacity` per server, so holding the overcommitment target
/// constant requires `1/a` times the servers of the static sizing.
pub fn servers_for_transient_overcommitment(
    vms: &[WorkloadVm],
    server_capacity: ResourceVector,
    overcommitment: f64,
    mean_availability: f64,
) -> usize {
    let baseline = min_cluster_size(vms, server_capacity) as f64;
    let availability = mean_availability.clamp(1e-9, 1.0);
    let factor = (1.0 + overcommitment.max(0.0)) * availability;
    ((baseline / factor).floor() as usize).max(1)
}

/// The overcommitment level a given server count corresponds to.
pub fn overcommitment_of(
    vms: &[WorkloadVm],
    server_capacity: ResourceVector,
    servers: usize,
) -> f64 {
    let peak = peak_committed(vms);
    let mut worst: f64 = 0.0;
    for (kind, cap) in server_capacity.iter() {
        let total = cap * servers as f64;
        if total > 0.0 {
            worst = worst.max(peak[kind] / total - 1.0);
        }
    }
    worst.max(0.0)
}

/// The standard simulated server of §7.1.2: 48 CPUs and 128 GB of RAM.
pub fn paper_server_capacity() -> ResourceVector {
    ResourceVector::cpu_mem(48_000.0, 131_072.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deflate_core::vm::VmId;
    use deflate_traces::azure::{AzureTraceConfig, AzureTraceGenerator};

    fn workload() -> Vec<WorkloadVm> {
        let traces = AzureTraceGenerator::generate(&AzureTraceConfig {
            num_vms: 200,
            duration_hours: 12.0,
            ..Default::default()
        });
        workload_from_azure(&traces, MinAllocationRule::None)
    }

    #[test]
    fn interactive_vms_become_deflatable() {
        let vms = workload();
        let deflatable = vms.iter().filter(|v| v.spec.deflatable).count();
        let on_demand = vms.len() - deflatable;
        assert!(deflatable > 0);
        assert!(on_demand > 0);
        for vm in &vms {
            if vm.spec.deflatable {
                assert_eq!(vm.spec.class, VmClass::Interactive);
                assert!(Priority::LEVELS.contains(&vm.spec.priority));
            } else {
                assert_eq!(vm.spec.min_allocation, vm.spec.max_allocation);
            }
            assert!(vm.departure_secs >= vm.arrival_secs);
            assert!(vm.lifetime_hours() >= 0.0);
        }
    }

    #[test]
    fn workload_is_sorted_by_arrival() {
        let vms = workload();
        for w in vms.windows(2) {
            assert!(w[0].arrival_secs <= w[1].arrival_secs);
        }
    }

    #[test]
    fn min_allocation_rules() {
        let traces = AzureTraceGenerator::generate(&AzureTraceConfig::with_vms(50, 3));
        let interactive = traces
            .iter()
            .find(|t| t.deflatable())
            .expect("at least one interactive VM");
        let none = WorkloadVm::from_azure(interactive, MinAllocationRule::None);
        assert!(none.spec.min_allocation.is_zero());
        let pri = WorkloadVm::from_azure(interactive, MinAllocationRule::PriorityTimesMax);
        let expected = interactive.priority().value() * interactive.size.cpu();
        assert!((pri.spec.min_allocation.cpu() - expected).abs() < 1e-6);
        let frac = WorkloadVm::from_azure(interactive, MinAllocationRule::Fraction(0.25));
        assert!((frac.spec.min_allocation.cpu() - 0.25 * interactive.size.cpu()).abs() < 1e-6);
    }

    #[test]
    fn peak_committed_simple_overlap() {
        let make = |id: u64, start: f64, end: f64, cores: f64| WorkloadVm {
            spec: VmSpec::deflatable(
                VmId(id),
                VmClass::Interactive,
                ResourceVector::cpu_mem(cores * 1000.0, 1024.0),
            ),
            arrival_secs: start,
            departure_secs: end,
            cpu_util: TimeSeries::five_minute(vec![0.5]),
        };
        // Two overlapping VMs and one later: peak = 2 VMs.
        let vms = vec![
            make(1, 0.0, 100.0, 4.0),
            make(2, 50.0, 150.0, 4.0),
            make(3, 200.0, 300.0, 8.0),
        ];
        let peak = peak_committed(&vms);
        assert!((peak.cpu() - 8_000.0).abs() < 1e-9);
        // Back-to-back VMs do not stack (departure processed first).
        let vms2 = vec![make(1, 0.0, 100.0, 4.0), make(2, 100.0, 200.0, 4.0)];
        assert!((peak_committed(&vms2).cpu() - 4_000.0).abs() < 1e-9);
    }

    #[test]
    fn cluster_sizing_round_trip() {
        let vms = workload();
        let cap = paper_server_capacity();
        let baseline = min_cluster_size(&vms, cap);
        assert!(baseline >= 1);
        // 0 % overcommitment keeps the baseline size.
        assert_eq!(servers_for_overcommitment(&vms, cap, 0.0), baseline);
        // 50 % overcommitment uses roughly two-thirds of the servers.
        let at_50 = servers_for_overcommitment(&vms, cap, 0.5);
        assert!(at_50 < baseline || baseline == 1);
        let measured = overcommitment_of(&vms, cap, at_50);
        assert!(measured >= 0.3, "measured overcommitment {measured}");
        // More servers → less overcommitment.
        assert!(overcommitment_of(&vms, cap, baseline) <= 0.05);
    }

    #[test]
    fn empty_workload_sizing() {
        let cap = paper_server_capacity();
        assert_eq!(min_cluster_size(&[], cap), 1);
        assert_eq!(overcommitment_of(&[], cap, 1), 0.0);
    }
}
