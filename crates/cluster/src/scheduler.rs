//! The global transfer scheduler: who gets the next migration-bandwidth
//! slot.
//!
//! The migration cost model makes bandwidth a scarce resource — each
//! server drives only `budget / link` concurrent transfers — but the
//! original reclamation handler booked slots *greedily*, in the order it
//! happened to pick migration candidates. Under a tight budget that order
//! is what decides survival: a long transfer booked first can pin the only
//! slot past the reclamation deadline, turning every transfer queued
//! behind it (and often itself) into a deadline abort and an eviction.
//!
//! [`TransferScheduler`] centralises the booking. It owns the per-server
//! bandwidth ledgers and grants slots to each *decision batch* (the
//! transfers requested by one capacity event) in the order prescribed by a
//! [`TransferPolicy`]:
//!
//! * [`TransferOrdering::Fifo`] — request order, bit-identical to the
//!   historical greedy booking (the default, kept for reproducibility);
//! * [`TransferOrdering::SmallestFirst`] — ascending transfer volume, the
//!   classic order that maximises the number of copies finishing before a
//!   shared deadline;
//! * [`TransferOrdering::Edf`] — ascending deadline, with **admission
//!   control**: a transfer whose earliest start plus estimated duration
//!   already overshoots its deadline is [`TransferDecision::Rejected`]
//!   instead of booked, so the doomed copy never wastes link time and its
//!   VM falls back to deflate-or-evict immediately.
//!
//! Bookings persist across batches (the ledger serialises transfers from
//! later events behind in-flight ones); reordering applies within each
//! batch, which is exactly the set of transfers whose start times are
//! still negotiable.

use deflate_core::checkpoint::{ByteReader, ByteWriter, CheckpointResult};
use deflate_core::policy::{TransferOrdering, TransferPolicy};
use deflate_core::vm::VmId;
use serde::{Deserialize, Serialize};

/// One transfer a capacity event wants booked.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferRequest {
    /// The migrating VM (identification / tie-breaking only).
    pub vm: VmId,
    /// Source server index.
    pub source: usize,
    /// Destination server index.
    pub dest: usize,
    /// Estimated page-copy duration, seconds (finite).
    pub duration_secs: f64,
    /// Estimated bytes on the wire, MiB (the `SmallestFirst` sort key).
    pub volume_mb: f64,
    /// Absolute abort deadline (the `Edf` sort key); `f64::INFINITY` for
    /// transfers that never race a deadline (migrate-backs).
    pub deadline_secs: f64,
}

/// The scheduler's verdict on one [`TransferRequest`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TransferDecision {
    /// A slot was granted on both endpoints.
    Booked {
        /// When the page copy starts (`>= now`; later when queued).
        start_secs: f64,
        /// When the transfer resolves: completion, or the deadline if that
        /// expires first (the manager then aborts it).
        event_secs: f64,
    },
    /// Admission control refused the transfer: even started as early as
    /// possible it provably cannot finish before its deadline. Only the
    /// `Edf` ordering rejects; the others book doomed transfers and let
    /// them abort at the deadline, as the greedy booking always did.
    Rejected,
}

/// Aggregate scheduler accounting, surfaced per run in
/// [`SimResult`](crate::metrics::SimResult).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SchedulerStats {
    /// Transfers granted a bandwidth slot.
    pub booked: usize,
    /// Transfers refused by EDF admission control.
    pub rejected: usize,
    /// Total time booked transfers spent queued for a slot, seconds
    /// (`start − request` summed over bookings).
    pub total_queue_wait_secs: f64,
}

impl SchedulerStats {
    /// Mean queueing delay per booked transfer, seconds.
    pub fn mean_queue_wait_secs(&self) -> f64 {
        if self.booked == 0 {
            0.0
        } else {
            self.total_queue_wait_secs / self.booked as f64
        }
    }
}

/// Global deadline-aware scheduler for migration-bandwidth slots.
#[derive(Debug, Clone)]
pub struct TransferScheduler {
    policy: TransferPolicy,
    /// Per-server ledger: end times of transfers holding one link worth of
    /// that server's budget.
    reservations: Vec<Vec<f64>>,
    stats: SchedulerStats,
}

impl TransferScheduler {
    /// A scheduler for `num_servers` servers under the given policy.
    pub fn new(num_servers: usize, policy: TransferPolicy) -> Self {
        TransferScheduler {
            policy,
            reservations: vec![Vec::new(); num_servers],
            stats: SchedulerStats::default(),
        }
    }

    /// The policy in effect.
    pub fn policy(&self) -> TransferPolicy {
        self.policy
    }

    /// Accounting so far.
    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }

    /// Owned heap bytes behind the scheduler: the per-server reservation
    /// ledgers (spine plus each ledger's capacity). Feeds the engine's
    /// `mem.scheduler` gauge.
    pub fn accounted_bytes(&self) -> u64 {
        deflate_core::mem::vec_capacity_bytes(&self.reservations)
            + self
                .reservations
                .iter()
                .map(deflate_core::mem::vec_capacity_bytes)
                .sum::<u64>()
    }

    /// Read-only view of the per-server reservation ledgers: each entry is
    /// the end time of a transfer holding one link worth of that server's
    /// budget. Used by the bandwidth-ledger audit checker, which verifies
    /// that every live in-flight transfer is backed by reservations on
    /// both endpoints. (The reverse is deliberately *not* an invariant:
    /// cancelled transfers leave their reservations to drain.)
    pub(crate) fn ledgers(&self) -> &[Vec<f64>] {
        &self.reservations
    }

    /// Mutable ledger access for the auditor's mutation-style tests.
    #[cfg(test)]
    pub(crate) fn ledger_mut(&mut self, idx: usize) -> &mut Vec<f64> {
        &mut self.reservations[idx]
    }

    /// Serialize the scheduler's *dynamic* state — the per-server
    /// reservation ledgers and the accumulated stats — for an engine
    /// checkpoint. The policy is deliberately not written: it is
    /// configuration, supplied again on restore, which is what lets a
    /// fork resume the same in-flight ledgers under a *different*
    /// [`TransferPolicy`].
    pub fn write_snapshot(&self, w: &mut ByteWriter) {
        w.put_usize(self.reservations.len());
        for ledger in &self.reservations {
            w.put_f64_slice(ledger);
        }
        w.put_usize(self.stats.booked);
        w.put_usize(self.stats.rejected);
        w.put_f64(self.stats.total_queue_wait_secs);
    }

    /// Rebuild a scheduler from [`write_snapshot`](Self::write_snapshot)
    /// bytes under the given policy, preserving ledgers and stats
    /// bit-identically.
    pub fn read_snapshot(r: &mut ByteReader<'_>, policy: TransferPolicy) -> CheckpointResult<Self> {
        let num_servers = r.get_usize()?;
        let mut reservations = Vec::with_capacity(num_servers);
        for _ in 0..num_servers {
            reservations.push(r.get_f64_vec()?);
        }
        let stats = SchedulerStats {
            booked: r.get_usize()?,
            rejected: r.get_usize()?,
            total_queue_wait_secs: r.get_f64()?,
        };
        Ok(TransferScheduler {
            policy,
            reservations,
            stats,
        })
    }

    /// Book one decision batch: grant (or refuse) a slot to every request,
    /// visiting them in policy order, and return the decisions indexed
    /// like `requests`. `slots` is the per-server concurrent-transfer
    /// budget (`usize::MAX` = unlimited).
    pub fn book_batch(
        &mut self,
        requests: &[TransferRequest],
        now_secs: f64,
        slots: usize,
    ) -> Vec<TransferDecision> {
        let mut order: Vec<usize> = (0..requests.len()).collect();
        match self.policy.ordering {
            TransferOrdering::Fifo => {}
            TransferOrdering::SmallestFirst => order.sort_by(|&a, &b| {
                requests[a]
                    .volume_mb
                    .total_cmp(&requests[b].volume_mb)
                    .then(a.cmp(&b))
            }),
            TransferOrdering::Edf => order.sort_by(|&a, &b| {
                requests[a]
                    .deadline_secs
                    .total_cmp(&requests[b].deadline_secs)
                    .then(a.cmp(&b))
            }),
        }
        let mut decisions = vec![TransferDecision::Rejected; requests.len()];
        for &i in &order {
            let req = &requests[i];
            let start = self
                .earliest_slot(req.source, now_secs, slots)
                .max(self.earliest_slot(req.dest, now_secs, slots));
            if self.policy.ordering == TransferOrdering::Edf
                && start + req.duration_secs > req.deadline_secs
            {
                self.stats.rejected += 1;
                continue;
            }
            let event = (start + req.duration_secs).min(req.deadline_secs);
            // The transfer occupies one link worth of both endpoints'
            // budgets until it completes or is aborted at the deadline.
            if start < req.deadline_secs {
                self.reserve(req.source, now_secs, event, slots);
                self.reserve(req.dest, now_secs, event, slots);
            }
            self.stats.booked += 1;
            self.stats.total_queue_wait_secs += start - now_secs;
            decisions[i] = TransferDecision::Booked {
                start_secs: start,
                event_secs: event,
            };
        }
        decisions
    }

    /// The earliest time a new transfer can start on this server given the
    /// concurrent-transfer budget: `now` when a slot is free, otherwise the
    /// moment enough ongoing transfers have drained.
    fn earliest_slot(&mut self, idx: usize, now_secs: f64, slots: usize) -> f64 {
        if slots == usize::MAX {
            return now_secs;
        }
        // Drop reservations that have already drained.
        let ledger = &mut self.reservations[idx];
        ledger.retain(|&end| end > now_secs);
        if ledger.len() < slots {
            return now_secs;
        }
        let mut ends = ledger.clone();
        ends.sort_by(f64::total_cmp);
        ends[ends.len() - slots]
    }

    fn reserve(&mut self, idx: usize, now_secs: f64, until_secs: f64, slots: usize) {
        if slots == usize::MAX || until_secs <= now_secs {
            return;
        }
        self.reservations[idx].push(until_secs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(
        vm: u64,
        source: usize,
        dest: usize,
        duration: f64,
        volume: f64,
        deadline: f64,
    ) -> TransferRequest {
        TransferRequest {
            vm: VmId(vm),
            source,
            dest,
            duration_secs: duration,
            volume_mb: volume,
            deadline_secs: deadline,
        }
    }

    fn starts(decisions: &[TransferDecision]) -> Vec<f64> {
        decisions
            .iter()
            .map(|d| match d {
                TransferDecision::Booked { start_secs, .. } => *start_secs,
                TransferDecision::Rejected => f64::NAN,
            })
            .collect()
    }

    #[test]
    fn fifo_books_in_request_order() {
        let mut s = TransferScheduler::new(3, TransferPolicy::fifo());
        // Two transfers off server 0, one slot each: the second queues.
        let batch = [
            req(1, 0, 1, 10.0, 1000.0, f64::INFINITY),
            req(2, 0, 2, 5.0, 500.0, f64::INFINITY),
        ];
        let d = s.book_batch(&batch, 100.0, 1);
        assert_eq!(starts(&d), vec![100.0, 110.0]);
        assert_eq!(s.stats().booked, 2);
        assert_eq!(s.stats().rejected, 0);
        assert!((s.stats().total_queue_wait_secs - 10.0).abs() < 1e-9);
        assert!((s.stats().mean_queue_wait_secs() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn smallest_first_lets_short_copies_jump_the_queue() {
        let mut s = TransferScheduler::new(3, TransferPolicy::smallest_first());
        let batch = [
            req(1, 0, 1, 10.0, 1000.0, f64::INFINITY),
            req(2, 0, 2, 5.0, 500.0, f64::INFINITY),
        ];
        let d = s.book_batch(&batch, 0.0, 1);
        // The small transfer goes first now.
        assert_eq!(starts(&d), vec![5.0, 0.0]);
    }

    #[test]
    fn edf_rejects_provably_late_transfers() {
        let mut s = TransferScheduler::new(3, TransferPolicy::edf());
        // Deadline 12 s out, one slot: the first copy (10 s) fits, the
        // second would start at 10 and needs 10 more — provably late.
        let batch = [
            req(1, 0, 1, 10.0, 1000.0, 12.0),
            req(2, 0, 2, 10.0, 1000.0, 12.0),
        ];
        let d = s.book_batch(&batch, 0.0, 1);
        assert_eq!(
            d,
            vec![
                TransferDecision::Booked {
                    start_secs: 0.0,
                    event_secs: 10.0
                },
                TransferDecision::Rejected,
            ]
        );
        assert_eq!(s.stats().rejected, 1);
        // The rejected transfer reserved nothing: a later request starts
        // right after the booked one, not after a phantom reservation.
        let later = s.book_batch(&[req(3, 0, 1, 1.0, 100.0, f64::INFINITY)], 0.0, 1);
        assert_eq!(starts(&later), vec![10.0]);
    }

    #[test]
    fn edf_orders_by_deadline_across_a_batch() {
        let mut s = TransferScheduler::new(2, TransferPolicy::edf());
        // The urgent transfer is requested *second* but booked first.
        let batch = [
            req(1, 0, 1, 4.0, 400.0, 100.0),
            req(2, 0, 1, 4.0, 400.0, 10.0),
        ];
        let d = s.book_batch(&batch, 0.0, 1);
        assert_eq!(starts(&d), vec![4.0, 0.0]);
        // Infinite deadlines (migrate-backs) are always admitted, last.
        let back = s.book_batch(&[req(3, 0, 1, 2.0, 200.0, f64::INFINITY)], 0.0, 1);
        assert_eq!(starts(&back), vec![8.0]);
        assert_eq!(s.stats().rejected, 0);
    }

    #[test]
    fn bookings_persist_across_batches_and_unlimited_budgets_never_queue() {
        let mut s = TransferScheduler::new(2, TransferPolicy::fifo());
        let first = s.book_batch(&[req(1, 0, 1, 10.0, 1000.0, f64::INFINITY)], 0.0, 1);
        assert_eq!(starts(&first), vec![0.0]);
        // A later batch queues behind the in-flight transfer…
        let second = s.book_batch(&[req(2, 0, 1, 1.0, 100.0, f64::INFINITY)], 5.0, 1);
        assert_eq!(starts(&second), vec![10.0]);
        // …but an unlimited budget never queues anything.
        let mut open = TransferScheduler::new(2, TransferPolicy::fifo());
        let d = open.book_batch(
            &[
                req(1, 0, 1, 10.0, 1000.0, f64::INFINITY),
                req(2, 0, 1, 10.0, 1000.0, f64::INFINITY),
            ],
            0.0,
            usize::MAX,
        );
        assert_eq!(starts(&d), vec![0.0, 0.0]);
    }
}
