//! The incremental placement index: cached server views + dirty tracking.
//!
//! Every placement decision ranks candidate servers through a
//! [`PlacementPolicy`] over [`ServerView`] snapshots. Before PR 7 the
//! cluster manager rebuilt **every** view from scratch on **every**
//! ranking pass — an `O(servers × resident domains)` walk per arrival that
//! `fig_profile` measured at 75.6 % of engine self time on the 100k-VM
//! `fig_scale` cell. The views barely change between arrivals, though:
//! one admission touches one server, a reclamation touches one server, a
//! migration two. [`PlacementIndex`] exploits that by keeping the views
//! *resident* and re-deriving only the servers marked dirty since the
//! last pass.
//!
//! The index is deliberately **not** a score cache: scores depend on the
//! demand vector of the VM being placed, so they cannot outlive a single
//! ranking pass. What *is* demand-independent — and what was expensive —
//! is the per-server `ServerView` itself (a sum over resident domains).
//! With views cached, a ranking pass is a linear scan over `Copy` structs.
//!
//! Two standing contracts, pinned by `tests/placement_equivalence.rs`,
//! `tests/placement_golden.rs` and `tests/shard_parity.rs`:
//!
//! 1. **Index == full rescan.** After any mutation sequence, ranking over
//!    the cached views picks the *same server with the same score* as a
//!    from-scratch rescan of every server. (This holds because the manager
//!    marks every view-affecting mutation dirty; see
//!    `ClusterManager::mark_server_dirty` for the taxonomy.)
//! 2. **Parallel == sequential.** The opt-in [`PlacementEngine::Parallel`]
//!    fan-out reduces per-span argmaxes in span order — strictly-greater
//!    score replaces, ties keep the earlier span — reproducing the
//!    sequential first-argmax bit for bit.

use deflate_core::placement::{PlacementDecision, PlacementEngine, PlacementPolicy, ServerView};
use deflate_core::vm::{ServerId, VmSpec};
use deflate_telemetry::{Phase, TelemetrySink};
use deflate_transient::pool::{run_tasks, Task, WorkerPool};

/// Cached per-server [`ServerView`]s with dirty tracking, plus the ranking
/// pass itself (sequential or parallel, per [`PlacementEngine`]).
#[derive(Debug, Clone)]
pub struct PlacementIndex {
    /// The resident view of every server, in server order. Entry `i` is
    /// exact unless `i` is queued dirty.
    views: Vec<ServerView>,
    /// `dirty[i]` — whether server `i` is queued for re-derivation.
    /// Doubles as the dedup bit for `dirty_queue`.
    dirty: Vec<bool>,
    /// Queued dirty server indices (unordered; order does not matter
    /// because refresh rewrites whole entries).
    dirty_queue: Vec<usize>,
}

impl PlacementIndex {
    /// Build an index over freshly derived views (starts clean).
    pub fn new(views: Vec<ServerView>) -> Self {
        let n = views.len();
        PlacementIndex {
            views,
            dirty: vec![false; n],
            dirty_queue: Vec::new(),
        }
    }

    /// Number of servers indexed.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Whether the index covers no servers.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Number of servers currently queued for re-derivation (telemetry /
    /// test visibility).
    pub fn pending_dirty(&self) -> usize {
        self.dirty_queue.len()
    }

    /// Queue server `idx` for re-derivation on the next [`refresh`]
    /// (O(1), deduplicated). Call after any mutation that changes the
    /// server's capacity, allocations, deflatable headroom, overcommitment
    /// or partition.
    ///
    /// [`refresh`]: PlacementIndex::refresh
    pub fn mark_dirty(&mut self, idx: usize) {
        if let Some(flag) = self.dirty.get_mut(idx) {
            if !*flag {
                *flag = true;
                self.dirty_queue.push(idx);
            }
        }
    }

    /// Re-derive every queued dirty view through `view_of` (under the
    /// `placement_index` telemetry phase). No-op when nothing is dirty —
    /// the common case between clustered mutations.
    pub fn refresh<F>(&mut self, telemetry: &TelemetrySink, mut view_of: F)
    where
        F: FnMut(usize) -> ServerView,
    {
        if self.dirty_queue.is_empty() {
            return;
        }
        let _span = telemetry.span(Phase::PlacementIndex);
        for idx in self.dirty_queue.drain(..) {
            self.views[idx] = view_of(idx);
            self.dirty[idx] = false;
        }
    }

    /// The queued dirty server indices, sorted ascending — the canonical
    /// form written into an engine checkpoint. (The live queue keeps
    /// insertion order, which is deterministic but irrelevant: refresh
    /// rewrites whole entries, so a restored index may replay the marks
    /// in any fixed order.)
    pub fn dirty_indices(&self) -> Vec<usize> {
        let mut indices = self.dirty_queue.clone();
        indices.sort_unstable();
        indices
    }

    /// The cached views, in server order. Exact only after [`refresh`]
    /// drained the dirty queue.
    ///
    /// [`refresh`]: PlacementIndex::refresh
    pub fn views(&self) -> &[ServerView] {
        &self.views
    }

    /// Owned heap bytes behind the index: the cached view table, the
    /// dirty bitmap and the dirty queue (see `deflate_core::mem` for the
    /// convention). Feeds the engine's `mem.placement_index` gauge.
    pub fn accounted_bytes(&self) -> u64 {
        deflate_core::mem::vec_capacity_bytes(&self.views)
            + deflate_core::mem::vec_capacity_bytes(&self.dirty)
            + deflate_core::mem::vec_capacity_bytes(&self.dirty_queue)
    }

    /// Rank the cached views for `vm` and pick a server — the incremental
    /// replacement for "rebuild all views, then `policy.place`". The
    /// caller must [`refresh`](PlacementIndex::refresh) first; `excluded`
    /// servers (already tried and rejected this placement loop, or a
    /// migration's own source) are filtered out before ranking.
    ///
    /// Under [`PlacementEngine::Sequential`] this delegates to
    /// `policy.place` over the eligible views — literally the pre-index
    /// code path over equal inputs, hence bit-identical by construction.
    /// Under [`PlacementEngine::Parallel`] the eligible views are split
    /// into `workers` contiguous spans, each span ranked by the same
    /// policy on a pool worker, and the per-span winners reduced in span
    /// order (strictly-greater replaces, ties keep the earlier span) —
    /// the sequential first-argmax, reproduced exactly.
    pub fn rank(
        &self,
        policy: &dyn PlacementPolicy,
        vm: &VmSpec,
        excluded: &[ServerId],
        engine: PlacementEngine,
        pool: Option<&WorkerPool>,
        telemetry: &TelemetrySink,
    ) -> Option<PlacementDecision> {
        debug_assert!(
            self.dirty_queue.is_empty(),
            "rank() requires a refreshed index"
        );
        let filtered: Vec<ServerView>;
        let eligible: &[ServerView] = if excluded.is_empty() {
            &self.views
        } else {
            filtered = self
                .views
                .iter()
                .filter(|v| !excluded.contains(&v.id))
                .copied()
                .collect();
            &filtered
        };
        let workers = engine.workers();
        // Spans below ~2 servers per worker cost more to fan out than to
        // scan; the sequential pass is the exact same argmax either way.
        if workers < 2 || eligible.len() < 2 * workers {
            return policy.place(vm, eligible);
        }
        let span = eligible.len().div_ceil(workers);
        let chunks: Vec<&[ServerView]> = eligible.chunks(span).collect();
        let mut partials: Vec<Option<Option<PlacementDecision>>> = vec![None; chunks.len()];
        {
            let tasks: Vec<Task<'_>> = partials
                .iter_mut()
                .zip(&chunks)
                .enumerate()
                .map(|(shard, (slot, chunk))| {
                    let chunk: &[ServerView] = chunk;
                    let worker_sink = telemetry.clone();
                    Box::new(move || {
                        let _span = worker_sink.shard_span(shard, Phase::PlacementRank);
                        *slot = Some(policy.place(vm, chunk));
                    }) as Task<'_>
                })
                .collect();
            run_tasks(pool, workers, tasks);
        }
        // Span-order reduce: strictly-greater score replaces, ties keep
        // the earlier span — the same `b.score >= s` comparison the
        // sequential `pick_best` applies server by server, so the winner
        // (and its score bits) match the sequential scan exactly. A
        // first-fit style policy scores every pick 0.0: the tie rule then
        // keeps the earliest span's pick, which is the sequential answer.
        let mut best: Option<PlacementDecision> = None;
        for partial in partials.into_iter().flatten().flatten() {
            match &best {
                Some(b) if b.score >= partial.score => {}
                _ => best = Some(partial),
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deflate_core::placement::{BestFit, CosineFitness, FirstFit, WorstFit};
    use deflate_core::resources::ResourceVector;
    use deflate_core::vm::{VmClass, VmId};

    fn view(id: u32, free_cpu: f64, deflatable_cpu: f64) -> ServerView {
        let total = ResourceVector::cpu_mem(48_000.0, 131_072.0);
        ServerView {
            id: ServerId(id),
            total,
            used: total - ResourceVector::cpu_mem(free_cpu, 65_536.0),
            deflatable: ResourceVector::cpu_mem(deflatable_cpu, 0.0),
            overcommitment: 1.0,
            partition: None,
        }
    }

    fn demand(cpu: f64) -> VmSpec {
        VmSpec::deflatable(
            VmId(7),
            VmClass::Interactive,
            ResourceVector::cpu_mem(cpu, 1_024.0),
        )
    }

    fn sink() -> TelemetrySink {
        TelemetrySink::disabled()
    }

    #[test]
    fn mark_dirty_dedups_and_refresh_drains() {
        let mut index = PlacementIndex::new(vec![view(0, 1_000.0, 0.0), view(1, 2_000.0, 0.0)]);
        assert_eq!(index.pending_dirty(), 0);
        index.mark_dirty(1);
        index.mark_dirty(1);
        index.mark_dirty(0);
        assert_eq!(index.pending_dirty(), 2);
        // Out-of-range marks are ignored (parked capacity shrink races).
        index.mark_dirty(99);
        assert_eq!(index.pending_dirty(), 2);
        index.refresh(&sink(), |i| view(i as u32, 5_000.0 * (i + 1) as f64, 0.0));
        assert_eq!(index.pending_dirty(), 0);
        assert!((index.views()[0].free().cpu() - 5_000.0).abs() < 1e-9);
        assert!((index.views()[1].free().cpu() - 10_000.0).abs() < 1e-9);
        // Clean refresh is a no-op and must not call view_of.
        index.refresh(&sink(), |_| unreachable!("no dirty servers queued"));
    }

    #[test]
    fn sequential_rank_matches_policy_place() {
        let views: Vec<ServerView> = (0..20)
            .map(|i| view(i, 500.0 * (i + 1) as f64, 250.0 * (i % 3) as f64))
            .collect();
        let index = PlacementIndex::new(views.clone());
        let vm = demand(900.0);
        for policy in [
            Box::new(CosineFitness::load_balancing()) as Box<dyn PlacementPolicy>,
            Box::new(FirstFit),
            Box::new(BestFit),
            Box::new(WorstFit),
        ] {
            let direct = policy.place(&vm, &views);
            let ranked = index.rank(
                policy.as_ref(),
                &vm,
                &[],
                PlacementEngine::Sequential,
                None,
                &sink(),
            );
            assert_eq!(direct, ranked, "policy {}", policy.name());
        }
    }

    #[test]
    fn parallel_rank_is_bit_identical_to_sequential() {
        let views: Vec<ServerView> = (0..53)
            .map(|i| {
                view(
                    i,
                    300.0 + 137.0 * ((i as f64 * 1.7).sin().abs()),
                    90.0 * (i % 5) as f64,
                )
            })
            .collect();
        let index = PlacementIndex::new(views);
        let pool = WorkerPool::new(4);
        for cpu in [100.0, 350.0, 420.0] {
            let vm = demand(cpu);
            for policy in [
                Box::new(CosineFitness::load_balancing()) as Box<dyn PlacementPolicy>,
                Box::new(FirstFit),
                Box::new(BestFit),
                Box::new(WorstFit),
            ] {
                let sequential = index.rank(
                    policy.as_ref(),
                    &vm,
                    &[],
                    PlacementEngine::Sequential,
                    None,
                    &sink(),
                );
                for workers in [2, 3, 4, 7] {
                    let parallel = index.rank(
                        policy.as_ref(),
                        &vm,
                        &[],
                        PlacementEngine::parallel(workers),
                        Some(&pool),
                        &sink(),
                    );
                    assert_eq!(
                        sequential,
                        parallel,
                        "policy {} with {workers} workers",
                        policy.name()
                    );
                    // Score bits, not just the pick.
                    if let (Some(s), Some(p)) = (sequential, parallel) {
                        assert_eq!(s.score.to_bits(), p.score.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn excluded_servers_never_win() {
        let index = PlacementIndex::new(vec![
            view(0, 9_000.0, 0.0),
            view(1, 8_000.0, 0.0),
            view(2, 7_000.0, 0.0),
        ]);
        let vm = demand(1_000.0);
        let policy = WorstFit;
        let all = index
            .rank(
                &policy,
                &vm,
                &[],
                PlacementEngine::Sequential,
                None,
                &sink(),
            )
            .unwrap();
        assert_eq!(all.server, ServerId(0));
        let without_best = index
            .rank(
                &policy,
                &vm,
                &[ServerId(0)],
                PlacementEngine::Sequential,
                None,
                &sink(),
            )
            .unwrap();
        assert_eq!(without_best.server, ServerId(1));
        assert!(index
            .rank(
                &policy,
                &vm,
                &[ServerId(0), ServerId(1), ServerId(2)],
                PlacementEngine::Sequential,
                None,
                &sink(),
            )
            .is_none());
    }

    #[test]
    fn tiny_eligible_sets_skip_the_fan_out() {
        // 3 eligible servers with 4 workers: the parallel path would fan
        // out more tasks than servers; rank degrades to the sequential
        // scan (no pool needed even with a parallel engine).
        let index = PlacementIndex::new(vec![
            view(0, 2_000.0, 0.0),
            view(1, 3_000.0, 0.0),
            view(2, 4_000.0, 0.0),
        ]);
        let vm = demand(500.0);
        let got = index.rank(
            &WorstFit,
            &vm,
            &[],
            PlacementEngine::parallel(4),
            None,
            &sink(),
        );
        assert_eq!(got.unwrap().server, ServerId(2));
    }
}
