//! Per-VM records and cluster-level metrics for the trace-driven simulation
//! (§7.4: failure probability, throughput loss, revenue).

use crate::manager::{AdmissionCounters, TransientCounters};
use crate::scheduler::SchedulerStats;
use deflate_autoscale::AutoscaleStats;
use deflate_core::pricing::{PricingPolicy, RateCard};
use deflate_core::vm::VmSpec;
use deflate_core::vm::{ServerId, VmId};
use deflate_traces::timeseries::TimeSeries;
use serde::{Deserialize, Serialize};

/// What ultimately happened to a VM in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum VmOutcome {
    /// The VM ran from arrival to departure (possibly deflated part of the
    /// time).
    Completed,
    /// The cluster could not make room for the VM at arrival — a resource
    /// reclamation failure (Figure 20's failure event for deflatable VMs).
    Rejected,
    /// The VM was killed by the preemption baseline at the given time.
    Preempted {
        /// Simulation time of the preemption, seconds.
        at_secs: f64,
    },
    /// The VM was destroyed because a provider-side capacity reclamation
    /// could be absorbed neither by deflation nor by migration.
    Evicted {
        /// Simulation time of the eviction, seconds.
        at_secs: f64,
    },
}

/// The full history of one VM across the simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmRecord {
    /// The VM's specification.
    pub spec: VmSpec,
    /// Arrival time, seconds.
    pub arrival_secs: f64,
    /// Scheduled departure time, seconds.
    pub departure_secs: f64,
    /// Final outcome.
    pub outcome: VmOutcome,
    /// CPU allocation fraction change-points: `(time_secs, fraction)` with
    /// the first entry at the arrival time. Empty for rejected VMs.
    pub allocation_history: Vec<(f64, f64)>,
    /// The VM's CPU utilisation trace (relative to its full allocation).
    pub cpu_util: TimeSeries,
}

impl VmRecord {
    /// The time the VM actually stopped running (departure, or preemption
    /// time, or arrival for rejected VMs).
    pub fn end_secs(&self) -> f64 {
        match self.outcome {
            VmOutcome::Completed => self.departure_secs,
            VmOutcome::Rejected => self.arrival_secs,
            VmOutcome::Preempted { at_secs } | VmOutcome::Evicted { at_secs } => at_secs,
        }
    }

    /// Hours the VM actually ran.
    pub fn hours_run(&self) -> f64 {
        (self.end_secs() - self.arrival_secs).max(0.0) / 3600.0
    }

    /// Owned heap bytes behind the record: the allocation-history
    /// change-points and the utilisation trace. Feeds the engine's
    /// `mem.vm_records` gauge.
    pub fn accounted_bytes(&self) -> u64 {
        deflate_core::mem::vec_capacity_bytes(&self.allocation_history)
            + self.cpu_util.accounted_bytes()
    }

    /// The CPU allocation fraction in effect at an absolute simulation time.
    pub fn allocation_fraction_at(&self, time_secs: f64) -> f64 {
        if self.allocation_history.is_empty()
            || time_secs < self.arrival_secs
            || time_secs >= self.end_secs()
        {
            return 0.0;
        }
        let mut fraction = self.allocation_history[0].1;
        for &(t, f) in &self.allocation_history {
            if t <= time_secs {
                fraction = f;
            } else {
                break;
            }
        }
        fraction
    }

    /// Time-average allocation fraction over the period the VM ran (1.0 =
    /// never deflated). Rejected VMs report 0.
    pub fn mean_allocation_fraction(&self) -> f64 {
        let start = self.arrival_secs;
        let end = self.end_secs();
        if end <= start || self.allocation_history.is_empty() {
            return 0.0;
        }
        let mut weighted = 0.0;
        for (i, &(t, f)) in self.allocation_history.iter().enumerate() {
            let seg_start = t.max(start);
            let seg_end = if i + 1 < self.allocation_history.len() {
                self.allocation_history[i + 1].0.min(end)
            } else {
                end
            };
            if seg_end > seg_start {
                weighted += f * (seg_end - seg_start);
            }
        }
        (weighted / (end - start)).clamp(0.0, 1.0)
    }

    /// Relative throughput loss of this VM: demanded CPU work that could not
    /// be served because the allocation was below the instantaneous usage
    /// (the area above the deflated allocation in Figure 4), divided by the
    /// total demanded work over the VM's intended lifetime. Work scheduled
    /// after a preemption is entirely lost.
    pub fn throughput_loss(&self) -> f64 {
        let interval = self.cpu_util.interval_secs();
        let mut demanded = 0.0;
        let mut lost = 0.0;
        for (k, &usage) in self.cpu_util.samples().iter().enumerate() {
            let t = self.arrival_secs + k as f64 * interval;
            if t >= self.departure_secs {
                break;
            }
            demanded += usage;
            let alloc = self.allocation_fraction_at(t);
            lost += (usage - alloc).max(0.0);
        }
        if demanded <= 0.0 {
            0.0
        } else {
            (lost / demanded).clamp(0.0, 1.0)
        }
    }

    /// Revenue earned from this VM under a pricing policy.
    pub fn revenue(&self, pricing: &PricingPolicy, rates: &RateCard) -> f64 {
        pricing.revenue(
            &self.spec,
            self.hours_run(),
            self.mean_allocation_fraction(),
            rates,
        )
    }
}

/// One VM migration performed during the simulation (capacity-reclamation
/// fallback, or migrate-back after a restitution). Recorded when the
/// transfer *completes*; aborted transfers appear as evictions and in
/// [`TransientCounters::migration_aborts`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationEvent {
    /// Simulation time the migration completed, seconds. With a costed
    /// migration model this is the end of the page transfer, not its start.
    pub time_secs: f64,
    /// The migrated VM.
    pub vm: VmId,
    /// Server the VM left.
    pub from: ServerId,
    /// Server the VM moved to.
    pub to: ServerId,
    /// Page-transfer time charged by the migration cost model, seconds.
    /// `0.0` under the historical cost-free model, whose instantaneous
    /// migrations this field was retrofitted to expose (every migration
    /// used to be implicitly free).
    pub duration_secs: f64,
    /// Bytes moved over the wire, MiB (hot footprint × dirty-page
    /// overhead).
    pub volume_mb: f64,
    /// True when this was a migrate-back to the VM's origin server after a
    /// capacity restitution.
    pub back: bool,
}

/// Engine accounting for one simulation run: how long the run took and
/// how many events it processed. `events_processed` is deterministic —
/// part of the engine's bit-identity contract across shard counts —
/// while `wall_clock_secs` is a measurement and is therefore **excluded
/// from [`SimResult`]'s equality** (two otherwise identical runs never
/// take exactly the same wall-clock time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Wall-clock duration of `ClusterSimulation::run`, seconds.
    pub wall_clock_secs: f64,
    /// Total events the engine delivered (arrivals, departures, capacity
    /// changes, migration completions, utilisation ticks).
    pub events_processed: u64,
    /// Shard count the engine ran with (1 = sequential).
    pub shards: usize,
}

impl RunStats {
    /// Engine throughput: events delivered per wall-clock second (0 when
    /// the run was too fast to time).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_clock_secs <= 0.0 {
            0.0
        } else {
            self.events_processed as f64 / self.wall_clock_secs
        }
    }
}

/// Aggregate result of one simulation run.
///
/// Equality compares the *simulation output* — records, counters,
/// migrations, utilisation samples and the deterministic event count —
/// and deliberately ignores the wall-clock time and shard count in
/// [`runtime`](Self::runtime): a sharded run is required to be
/// `==` the sequential run (the engine's bit-identity contract, pinned
/// by `tests/shard_parity.rs`) even though it was timed differently.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// Per-VM records, in arrival order.
    pub records: Vec<VmRecord>,
    /// Admission counters from the cluster manager.
    pub counters: AdmissionCounters,
    /// Transient-capacity counters from the cluster manager (all zero for
    /// runs without a capacity schedule).
    pub transient: TransientCounters,
    /// Transfer-scheduler accounting: bandwidth slots booked, EDF admission
    /// rejections, and queueing delay behind the per-server budgets.
    pub scheduler: SchedulerStats,
    /// Autoscaling accounting: scale actions, launches vs reinflations,
    /// replicas lost, setpoint error and the elastic application's
    /// response-time profile. All-default for runs without an enabled
    /// [`AutoscalePolicy`](deflate_core::policy::AutoscalePolicy).
    pub autoscale: AutoscaleStats,
    /// Every migration performed, in time order.
    pub migrations: Vec<MigrationEvent>,
    /// Cluster-utilisation samples `(time_secs, effective used / currently
    /// available capacity)`, populated when utilisation ticks are enabled.
    pub utilization: Vec<(f64, f64)>,
    /// Number of servers the cluster had.
    pub num_servers: usize,
    /// Nominal overcommitment level of the configuration (peak committed
    /// allocation over cluster capacity, minus one).
    pub overcommitment: f64,
    /// Human-readable name of the reclamation mode / policy that ran.
    pub policy_name: String,
    /// Engine accounting: wall-clock duration, events processed, shards.
    pub runtime: RunStats,
}

impl PartialEq for SimResult {
    fn eq(&self, other: &Self) -> bool {
        // Exhaustive destructuring: adding a field to SimResult fails to
        // compile here until someone decides whether it joins the
        // bit-identity contract — it cannot silently fall out of it.
        let SimResult {
            records,
            counters,
            transient,
            scheduler,
            autoscale,
            migrations,
            utilization,
            num_servers,
            overcommitment,
            policy_name,
            runtime,
        } = self;
        *records == other.records
            && *counters == other.counters
            && *transient == other.transient
            && *scheduler == other.scheduler
            && *autoscale == other.autoscale
            && *migrations == other.migrations
            && *utilization == other.utilization
            && *num_servers == other.num_servers
            && *overcommitment == other.overcommitment
            && *policy_name == other.policy_name
            // Deterministic part of the runtime stats only: the event
            // count must match, the wall clock and shard count must not.
            && runtime.events_processed == other.runtime.events_processed
    }
}

impl SimResult {
    /// Number of deflatable (low-priority) VM arrivals.
    pub fn deflatable_arrivals(&self) -> usize {
        self.records.iter().filter(|r| r.spec.deflatable).count()
    }

    /// Figure 20's failure probability: the fraction of deflatable VMs that
    /// either could not be admitted (resource reclamation failed) or were
    /// preempted (baseline mode).
    pub fn failure_probability(&self) -> f64 {
        let deflatable = self.deflatable_arrivals();
        if deflatable == 0 {
            return 0.0;
        }
        let failures = self
            .records
            .iter()
            .filter(|r| r.spec.deflatable)
            .filter(|r| !matches!(r.outcome, VmOutcome::Completed))
            .count();
        failures as f64 / deflatable as f64
    }

    /// Fraction of deflatable VMs destroyed by capacity reclamations
    /// (evictions only; rejections and arrival-preemptions excluded).
    pub fn eviction_probability(&self) -> f64 {
        let deflatable = self.deflatable_arrivals();
        if deflatable == 0 {
            return 0.0;
        }
        let evicted = self
            .records
            .iter()
            .filter(|r| r.spec.deflatable)
            .filter(|r| matches!(r.outcome, VmOutcome::Evicted { .. }))
            .count();
        evicted as f64 / deflatable as f64
    }

    /// Total number of migrations performed (including migrate-backs).
    pub fn migration_count(&self) -> usize {
        self.migrations.len()
    }

    /// Number of migrations aborted mid-transfer because the source's
    /// reclamation deadline expired (each also evicted its VM).
    pub fn migration_abort_count(&self) -> usize {
        self.transient.migration_aborts
    }

    /// Number of migrations the transfer scheduler refused up front (EDF
    /// admission control: the copy provably could not beat its deadline).
    pub fn migration_rejection_count(&self) -> usize {
        self.transient.migration_rejections
    }

    /// Mean time booked transfers spent queued for a bandwidth slot,
    /// seconds.
    pub fn mean_queue_wait_secs(&self) -> f64 {
        self.scheduler.mean_queue_wait_secs()
    }

    /// Deflatable VMs lost to capacity reclamations either way: evicted
    /// outright or aborted mid-migration (aborts resolve to evictions, so
    /// this is the count of `Evicted` outcomes). The quantity the
    /// bandwidth-sweep experiment compares across reclamation modes.
    pub fn eviction_or_abort_count(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.spec.deflatable)
            .filter(|r| matches!(r.outcome, VmOutcome::Evicted { .. }))
            .count()
    }

    /// Total page-transfer time spent by completed migrations, seconds.
    /// Zero under the cost-free model — the non-zero value is the migration
    /// cost the transient experiments previously ignored.
    pub fn total_migration_secs(&self) -> f64 {
        // fold, not sum: this toolchain's empty f64 sum yields -0.0, which
        // prints as "-0.0" in experiment tables.
        self.migrations
            .iter()
            .fold(0.0, |acc, m| acc + m.duration_secs)
    }

    /// Mean page-transfer time per completed migration, seconds (0 when
    /// nothing migrated).
    pub fn mean_migration_secs(&self) -> f64 {
        if self.migrations.is_empty() {
            0.0
        } else {
            self.total_migration_secs() / self.migrations.len() as f64
        }
    }

    /// Total bytes moved by completed migrations, MiB.
    pub fn total_migration_volume_mb(&self) -> f64 {
        self.migrations.iter().fold(0.0, |acc, m| acc + m.volume_mb)
    }

    /// Figure 21's metric: mean relative throughput loss across deflatable
    /// VMs that were admitted.
    pub fn mean_throughput_loss(&self) -> f64 {
        let admitted: Vec<&VmRecord> = self
            .records
            .iter()
            .filter(|r| r.spec.deflatable && !matches!(r.outcome, VmOutcome::Rejected))
            .collect();
        if admitted.is_empty() {
            return 0.0;
        }
        admitted.iter().map(|r| r.throughput_loss()).sum::<f64>() / admitted.len() as f64
    }

    /// Total revenue from deflatable (low-priority) VMs under a pricing
    /// policy.
    pub fn deflatable_revenue(&self, pricing: &PricingPolicy, rates: &RateCard) -> f64 {
        self.records
            .iter()
            .filter(|r| r.spec.deflatable)
            .map(|r| r.revenue(pricing, rates))
            .sum()
    }

    /// Revenue from deflatable VMs per server — the quantity whose relative
    /// increase Figure 22 plots (shrinking the cluster at constant workload
    /// raises revenue per server until failures erode it).
    pub fn deflatable_revenue_per_server(&self, pricing: &PricingPolicy, rates: &RateCard) -> f64 {
        if self.num_servers == 0 {
            0.0
        } else {
            self.deflatable_revenue(pricing, rates) / self.num_servers as f64
        }
    }

    /// Fraction of admitted deflatable VMs that were deflated at least once.
    pub fn deflated_vm_fraction(&self) -> f64 {
        let admitted: Vec<&VmRecord> = self
            .records
            .iter()
            .filter(|r| r.spec.deflatable && !matches!(r.outcome, VmOutcome::Rejected))
            .collect();
        if admitted.is_empty() {
            return 0.0;
        }
        let deflated = admitted
            .iter()
            .filter(|r| r.allocation_history.iter().any(|&(_, f)| f < 1.0 - 1e-9))
            .count();
        deflated as f64 / admitted.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deflate_core::resources::ResourceVector;
    use deflate_core::vm::{VmClass, VmId};

    fn record(history: Vec<(f64, f64)>, outcome: VmOutcome, util: Vec<f64>) -> VmRecord {
        VmRecord {
            spec: VmSpec::deflatable(
                VmId(1),
                VmClass::Interactive,
                ResourceVector::cpu_mem(4000.0, 8192.0),
            ),
            arrival_secs: 0.0,
            departure_secs: 1200.0,
            outcome,
            allocation_history: history,
            cpu_util: TimeSeries::five_minute(util),
        }
    }

    #[test]
    fn allocation_fraction_lookup() {
        let r = record(
            vec![(0.0, 1.0), (600.0, 0.5)],
            VmOutcome::Completed,
            vec![0.2; 4],
        );
        assert_eq!(r.allocation_fraction_at(100.0), 1.0);
        assert_eq!(r.allocation_fraction_at(599.0), 1.0);
        assert_eq!(r.allocation_fraction_at(600.0), 0.5);
        assert_eq!(r.allocation_fraction_at(1199.0), 0.5);
        // Outside the lifetime: 0.
        assert_eq!(r.allocation_fraction_at(-1.0), 0.0);
        assert_eq!(r.allocation_fraction_at(1200.0), 0.0);
    }

    #[test]
    fn mean_allocation_fraction_time_weighted() {
        let r = record(
            vec![(0.0, 1.0), (600.0, 0.5)],
            VmOutcome::Completed,
            vec![0.2; 4],
        );
        assert!((r.mean_allocation_fraction() - 0.75).abs() < 1e-9);
        // Rejected VM: zero.
        let rej = record(vec![], VmOutcome::Rejected, vec![0.2; 4]);
        assert_eq!(rej.mean_allocation_fraction(), 0.0);
        assert_eq!(rej.hours_run(), 0.0);
    }

    #[test]
    fn throughput_loss_counts_usage_above_allocation() {
        // Usage 0.8 for 4 intervals; allocation drops to 0.5 halfway.
        let r = record(
            vec![(0.0, 1.0), (600.0, 0.5)],
            VmOutcome::Completed,
            vec![0.8; 4],
        );
        // Lost = 2 × (0.8 − 0.5) = 0.6 of demanded 3.2.
        assert!((r.throughput_loss() - 0.6 / 3.2).abs() < 1e-9);
        // Never-deflated VM loses nothing.
        let full = record(vec![(0.0, 1.0)], VmOutcome::Completed, vec![0.9; 4]);
        assert_eq!(full.throughput_loss(), 0.0);
        // Idle VM loses nothing even when deflated.
        let idle = record(vec![(0.0, 0.2)], VmOutcome::Completed, vec![0.0; 4]);
        assert_eq!(idle.throughput_loss(), 0.0);
    }

    #[test]
    fn preempted_vm_loses_remaining_work() {
        let r = record(
            vec![(0.0, 1.0)],
            VmOutcome::Preempted { at_secs: 600.0 },
            vec![0.5; 4],
        );
        // After 600 s the allocation is 0, so half the demand is lost.
        assert!((r.throughput_loss() - 0.5).abs() < 1e-9);
        assert!((r.hours_run() - 600.0 / 3600.0).abs() < 1e-9);
    }

    #[test]
    fn sim_result_aggregates() {
        let completed = record(vec![(0.0, 1.0)], VmOutcome::Completed, vec![0.5; 4]);
        let rejected = record(vec![], VmOutcome::Rejected, vec![0.5; 4]);
        let deflated = record(
            vec![(0.0, 1.0), (300.0, 0.4)],
            VmOutcome::Completed,
            vec![0.5; 4],
        );
        let result = SimResult {
            records: vec![completed, rejected, deflated],
            counters: AdmissionCounters::default(),
            transient: TransientCounters::default(),
            scheduler: SchedulerStats::default(),
            autoscale: AutoscaleStats::default(),
            migrations: vec![],
            utilization: vec![],
            num_servers: 2,
            overcommitment: 0.5,
            policy_name: "test".into(),
            runtime: RunStats::default(),
        };
        assert_eq!(result.deflatable_arrivals(), 3);
        assert!((result.failure_probability() - 1.0 / 3.0).abs() < 1e-9);
        assert!(result.mean_throughput_loss() > 0.0);
        assert!((result.deflated_vm_fraction() - 0.5).abs() < 1e-9);
        let rates = RateCard::default();
        let rev = result.deflatable_revenue(&PricingPolicy::static_default(), &rates);
        assert!(rev > 0.0);
        assert!(
            (result.deflatable_revenue_per_server(&PricingPolicy::static_default(), &rates)
                - rev / 2.0)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn empty_result_is_all_zero() {
        let result = SimResult {
            records: vec![],
            counters: AdmissionCounters::default(),
            transient: TransientCounters::default(),
            scheduler: SchedulerStats::default(),
            autoscale: AutoscaleStats::default(),
            migrations: vec![],
            utilization: vec![],
            num_servers: 0,
            overcommitment: 0.0,
            policy_name: "empty".into(),
            runtime: RunStats::default(),
        };
        assert_eq!(result.failure_probability(), 0.0);
        assert_eq!(result.mean_throughput_loss(), 0.0);
        assert_eq!(result.deflated_vm_fraction(), 0.0);
        assert_eq!(
            result
                .deflatable_revenue_per_server(&PricingPolicy::PriorityBased, &RateCard::default()),
            0.0
        );
    }

    #[test]
    fn equality_ignores_wall_clock_but_not_event_count() {
        let base = SimResult {
            records: vec![],
            counters: AdmissionCounters::default(),
            transient: TransientCounters::default(),
            scheduler: SchedulerStats::default(),
            autoscale: AutoscaleStats::default(),
            migrations: vec![],
            utilization: vec![],
            num_servers: 1,
            overcommitment: 0.0,
            policy_name: "x".into(),
            runtime: RunStats {
                wall_clock_secs: 1.0,
                events_processed: 42,
                shards: 1,
            },
        };
        let mut timed_differently = base.clone();
        timed_differently.runtime.wall_clock_secs = 9.0;
        timed_differently.runtime.shards = 4;
        assert_eq!(base, timed_differently);
        let mut different_events = base.clone();
        different_events.runtime.events_processed = 43;
        assert_ne!(base, different_events);
    }

    #[test]
    fn run_stats_throughput() {
        let stats = RunStats {
            wall_clock_secs: 2.0,
            events_processed: 100,
            shards: 2,
        };
        assert!((stats.events_per_sec() - 50.0).abs() < 1e-9);
        assert_eq!(RunStats::default().events_per_sec(), 0.0);
    }
}
