//! Trace-driven discrete-event cluster simulation (§7.1.2, §7.4).
//!
//! The simulator replays a VM workload (arrival time, departure time, size,
//! CPU-utilisation history — normally derived from the synthetic Azure trace)
//! against a [`ClusterManager`], recording for every VM when it was admitted,
//! rejected, preempted or evicted and how its CPU allocation changed over
//! time. The resulting [`SimResult`] yields the three cluster-level metrics
//! of §7.4: reclamation-failure probability (Figure 20), throughput loss
//! (Figure 21) and revenue (Figure 22).
//!
//! The simulation runs on the generalized event engine of
//! `deflate-transient`: a deterministic binary-heap event queue
//! ([`ShardedEventQueue`] — one heap per engine shard) over typed
//! [`SimEvent`]s. Besides VM arrivals and departures it understands
//! provider-side **capacity events** — attach a [`CapacitySchedule`] with
//! [`ClusterSimulation::with_capacity_schedule`] and every reclamation is
//! absorbed by deflation, then deflation-aware migration, and only then by
//! evicting VMs (see [`ClusterManager::reclaim_capacity`]).
//!
//! Migrations are priced by a [`MigrationCostModel`]
//! ([`ClusterSimulation::with_migration_cost`]): instead of completing
//! instantly, a costed transfer becomes *in flight* — the manager reports
//! it as started, the simulator schedules a [`SimEvent::MigrationComplete`]
//! at the transfer's end (or at the source's reclamation deadline, in which
//! case the VM is aborted and evicted) and feeds it back through
//! [`ClusterManager::complete_migration`].
//!
//! # Elastic autoscaling
//!
//! With [`ClusterSimulation::with_autoscale`] the run also hosts
//! **elastic applications** (`deflate-autoscale`): replica pools resized
//! by a target-tracking autoscaler that observes each `UtilizationTick`
//! and schedules [`SimEvent::ScaleOut`] / [`SimEvent::ScaleIn`] events
//! for its decisions. The deflation-aware policy scales in by *parking*
//! (deflating) replicas and scales out by *reinflating* them — instantly,
//! where a fresh launch pays a boot delay. `AutoscalePolicy::Disabled`
//! (the default) schedules nothing and is bit-identical to a run without
//! the call.
//!
//! # Sharded engine
//!
//! For large traces the simulator can run its engine **sharded**
//! ([`ClusterSimulation::with_shards`], default 1 = sequential): the event
//! queue splits into per-shard heaps built in parallel
//! ([`ShardedEventQueue`]), and the embarrassingly-parallel per-server
//! passes — per-VM record initialisation, trace-utilisation sampling ahead
//! of capacity events, and the per-server sums behind each
//! `UtilizationTick` — fan out to one `std::thread` worker per shard.
//! Event *handling* (placement, reclamation ladders, transfer booking)
//! stays serialized at the coordinator in the queue's global total order,
//! which is what makes a sharded run **bit-identical** to the sequential
//! one (pinned by `tests/shard_parity.rs`, documented in
//! `docs/PERFORMANCE.md`).

use crate::audit::Auditor;
use crate::manager::{ClusterConfig, ClusterManager, PlacementResult, ReclamationMode};
use crate::metrics::{MigrationEvent, RunStats, SimResult, VmOutcome, VmRecord};
use crate::spec::WorkloadVm;
use deflate_autoscale::{Autoscaler, ElasticApp};
use deflate_core::audit::AuditSpec;
use deflate_core::checkpoint::{ByteReader, ByteWriter, CheckpointError, CheckpointResult};
use deflate_core::placement::PlacementEngine;
use deflate_core::policy::{AutoscalePolicy, RestorePolicy, TransferPolicy};
use deflate_core::shard::ShardConfig;
use deflate_core::telemetry::TelemetrySpec;
use deflate_core::vm::{ServerId, VmId};
use deflate_hypervisor::domain::CacheRegrowthModel;
use deflate_hypervisor::migration::MigrationCostModel;
use deflate_telemetry::{EventField, MemoryLedger, Phase, TelemetryEventKind, TelemetrySink};
use deflate_transient::events::SimEvent;
use deflate_transient::pool::{run_tasks, Task, WorkerPool};
use deflate_transient::sharded::ShardedEventQueue;
use deflate_transient::signal::CapacitySchedule;
use std::collections::HashMap;
use std::sync::Arc;

/// The trace-driven cluster simulator.
pub struct ClusterSimulation {
    config: ClusterConfig,
    mode: ReclamationMode,
    schedule: CapacitySchedule,
    utilization_tick_secs: Option<f64>,
    migrate_back: bool,
    migration_cost: MigrationCostModel,
    transfer_policy: TransferPolicy,
    restore_policy: RestorePolicy,
    cache_regrowth: CacheRegrowthModel,
    autoscale_policy: AutoscalePolicy,
    elastic_apps: Vec<ElasticApp>,
    shards: ShardConfig,
    placement_engine: PlacementEngine,
    telemetry: TelemetrySink,
    audit: AuditSpec,
    /// Memory-ledger sampling cadence, in utilisation ticks (1 = every
    /// tick). Only consulted when telemetry is enabled.
    memory_sample_every_ticks: u64,
}

/// The engine's complete working state between event boundaries: the
/// cluster manager, the optional autoscaler, the pending event queue and
/// the per-VM bookkeeping. Built by `boot`, advanced by `drive`, folded
/// into a [`SimResult`] by `finish` — and, between `drive` calls,
/// serializable as a versioned snapshot
/// ([`ClusterSimulation::checkpoint`]).
struct EngineState {
    pool: Option<Arc<WorkerPool>>,
    manager: ClusterManager,
    autoscaler: Option<Autoscaler>,
    queue: ShardedEventQueue,
    index_of: HashMap<VmId, usize>,
    records: Vec<VmRecord>,
    running: Vec<bool>,
    migrations: Vec<MigrationEvent>,
    utilization: Vec<(f64, f64)>,
    events_processed: u64,
    /// The online invariant auditor, present only when an [`AuditSpec`]
    /// enables at least one checker. Pure observer: never serialized into
    /// snapshots, never consulted by any decision path.
    auditor: Option<Auditor>,
}

impl ClusterSimulation {
    /// Create a simulation with the given cluster configuration and
    /// reclamation mode (static capacity, no utilisation sampling, free
    /// instantaneous migrations).
    pub fn new(config: ClusterConfig, mode: ReclamationMode) -> Self {
        ClusterSimulation {
            config,
            mode,
            schedule: CapacitySchedule::empty(),
            utilization_tick_secs: None,
            migrate_back: false,
            migration_cost: MigrationCostModel::instant(),
            transfer_policy: TransferPolicy::default(),
            restore_policy: RestorePolicy::default(),
            cache_regrowth: CacheRegrowthModel::default(),
            autoscale_policy: AutoscalePolicy::default(),
            elastic_apps: Vec::new(),
            shards: ShardConfig::sequential(),
            placement_engine: PlacementEngine::default(),
            telemetry: TelemetrySink::disabled(),
            audit: AuditSpec::off(),
            memory_sample_every_ticks: 1,
        }
    }

    /// Run the online invariant auditor with the given [`AuditSpec`]: the
    /// enabled checkers re-verify engine invariants after **every**
    /// processed event and fail fast (with a diagnostic naming the
    /// checker, event id, time and server) on the first violation. Off by
    /// default — and strictly observational when on: a run with every
    /// checker enabled is bit-identical to a run with auditing off
    /// (pinned by `tests/telemetry_determinism.rs`). See
    /// [`Auditor`] documentation.
    pub fn with_audit(mut self, spec: AuditSpec) -> Self {
        self.audit = spec;
        self
    }

    /// The audit spec in effect (off unless configured).
    pub fn audit_spec(&self) -> AuditSpec {
        self.audit
    }

    /// Sample the per-subsystem memory ledger every `ticks` utilisation
    /// ticks (default 1 = every tick; values below 1 are clamped). The
    /// ledger also publishes once at the end of every telemetry-enabled
    /// run, so runs without utilisation ticks still report final `mem.*`
    /// gauges.
    pub fn with_memory_sample_every(mut self, ticks: u64) -> Self {
        self.memory_sample_every_ticks = ticks.max(1);
        self
    }

    /// Observe the run through a telemetry sink (`deflate-telemetry`):
    /// engine phase spans, metrics, JSONL event log, Chrome trace — per
    /// the sink's [`TelemetrySpec`]. The disabled default costs one
    /// branch per call site, and an enabled sink **never changes
    /// results**: every `SimResult` field is bit-identical to a
    /// telemetry-off run at any shard count (pinned by
    /// `tests/telemetry_determinism.rs`).
    pub fn with_telemetry(mut self, telemetry: TelemetrySink) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// [`with_telemetry`](Self::with_telemetry) from a spec, opening any
    /// file sinks now (a bad path fails before the run starts).
    pub fn with_telemetry_spec(self, spec: &TelemetrySpec) -> std::io::Result<Self> {
        Ok(self.with_telemetry(TelemetrySink::from_spec(spec)?))
    }

    /// The sink the run will feed (disabled unless configured).
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.telemetry
    }

    /// Run the engine with the given shard count ([`ShardConfig`]): per-
    /// shard event queues built in parallel, per-server passes fanned out
    /// to `std::thread` workers, one coordinator preserving the global
    /// event order. Sharding never changes results — any shard count is
    /// bit-identical to the sequential default — only how fast the run
    /// goes on multi-core hardware.
    pub fn with_shards(mut self, shards: ShardConfig) -> Self {
        self.shards = shards;
        self
    }

    /// Evaluate placement-ranking passes under the given
    /// [`PlacementEngine`]: the sequential default is bit-identical to the
    /// pre-index full rescan, and the parallel fan-out is bit-identical to
    /// the sequential pass (pinned by `tests/placement_golden.rs` and
    /// `tests/shard_parity.rs`) — like [`with_shards`](Self::with_shards),
    /// a performance knob that never changes results.
    pub fn with_placement_engine(mut self, engine: PlacementEngine) -> Self {
        self.placement_engine = engine;
        self
    }

    /// Charge migrations with the given cost model: transfers take
    /// page-copy time, queue behind per-server bandwidth budgets and race
    /// the reclamation deadline (losing the race evicts the VM).
    pub fn with_migration_cost(mut self, model: MigrationCostModel) -> Self {
        self.migration_cost = model;
        self
    }

    /// Schedule migration-bandwidth slots under the given policy: FIFO
    /// (the default — bit-identical to the pre-scheduler greedy booking),
    /// smallest-transfer-first, or deadline-aware EDF with admission
    /// control. See [`TransferPolicy`].
    pub fn with_transfer_policy(mut self, policy: TransferPolicy) -> Self {
        self.transfer_policy = policy;
        self
    }

    /// Reinflate residents after capacity restitutions under the given
    /// [`RestorePolicy`]: the greedy default hands the whole returned room
    /// back immediately (bit-identical to the pre-knob behaviour);
    /// hysteresis and spread-out variants damp the response to
    /// fast-oscillating capacity signals.
    pub fn with_restore_policy(mut self, policy: RestorePolicy) -> Self {
        self.restore_policy = policy;
        self
    }

    /// Regrow squeezed page caches over simulated time with the given
    /// model (default: disabled — caches refill only on usage reports).
    /// With a positive rate, repeated deflate-then-migrate squeezes of the
    /// same guest are no longer free.
    pub fn with_cache_regrowth(mut self, model: CacheRegrowthModel) -> Self {
        self.cache_regrowth = model;
        self
    }

    /// Run elastic applications under the given [`AutoscalePolicy`]. With
    /// `Disabled` (the default) this is a no-op — no events, no replicas,
    /// bit-identical to a run without the call. Enabled policies require
    /// [`with_utilization_ticks`](Self::with_utilization_ticks), which is
    /// where scaling decisions are made; each app's replica-id range must
    /// be disjoint from the workload's VM ids.
    pub fn with_autoscale(mut self, policy: AutoscalePolicy, apps: Vec<ElasticApp>) -> Self {
        self.autoscale_policy = policy;
        self.elastic_apps = apps;
        self
    }

    /// Attach a provider-side capacity schedule: its reclamation and
    /// restitution change-points become `CapacityReclaim` / `CapacityRestore`
    /// events in the run.
    pub fn with_capacity_schedule(mut self, schedule: CapacitySchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sample cluster utilisation every `interval_secs` of simulated time
    /// (`UtilizationTick` events; results land in [`SimResult::utilization`]).
    pub fn with_utilization_ticks(mut self, interval_secs: f64) -> Self {
        self.utilization_tick_secs = (interval_secs > 0.0).then_some(interval_secs);
        self
    }

    /// Migrate displaced VMs back to their origin server when its capacity
    /// is restored.
    pub fn with_migrate_back(mut self, migrate_back: bool) -> Self {
        self.migrate_back = migrate_back;
        self
    }

    /// Replay the workload and return the per-VM records and aggregate
    /// counters.
    pub fn run(&self, workload: &[WorkloadVm]) -> SimResult {
        let started_at = std::time::Instant::now();
        // The umbrella span: its *self* time (total minus the attributed
        // phases below) is `fig_profile`'s "other" row, so the phase
        // table always sums to the engine total.
        let _engine_total = self.telemetry.span(Phase::EngineTotal);
        let mut state = self.boot(workload);
        self.drive(workload, &mut state, None);
        self.finish(workload, state, started_at)
    }

    /// Run the engine up to simulated time `at_secs` — processing every
    /// event with `time <= at_secs`, including events their handlers
    /// schedule back inside the horizon — and serialize the complete
    /// dynamic state as a versioned snapshot.
    ///
    /// The contract, pinned by `tests/checkpoint_restore.rs`: for any
    /// event-boundary `T`, `resume(checkpoint(T))` yields a `SimResult`
    /// equal to the uninterrupted `run` in **every** field (wall-clock
    /// time excepted — it is re-measured, never serialized, so snapshot
    /// bytes are machine-independent). The bytes are also independent of
    /// the shard count and of telemetry: queue contents are written in
    /// the queue's deterministic pop order and every map in sorted order.
    ///
    /// A snapshot holds only *dynamic* state. Configuration — the cluster
    /// layout, policies, cost models, telemetry sinks, shard count — is
    /// re-supplied by the [`ClusterSimulation`] that restores it, which is
    /// what lets a **fork** replay the same snapshot under a different
    /// [`TransferPolicy`] (the scheduler's ledgers persist; its policy is
    /// the restoring simulation's).
    pub fn checkpoint(&self, workload: &[WorkloadVm], at_secs: f64) -> Vec<u8> {
        let _engine_total = self.telemetry.span(Phase::EngineTotal);
        let mut state = self.boot(workload);
        self.drive(workload, &mut state, Some(at_secs));
        self.serialize_state(workload, &state, at_secs)
    }

    /// Restore a [`checkpoint`](Self::checkpoint) snapshot and run the
    /// remaining events to completion. The receiver must be configured
    /// identically to the checkpointing simulation — except for knobs
    /// that are *deliberately* part of a fork (the transfer policy) and
    /// knobs that never affect results (shards, placement engine,
    /// telemetry — sinks are re-attached here, never serialized).
    pub fn resume(&self, workload: &[WorkloadVm], snapshot: &[u8]) -> CheckpointResult<SimResult> {
        let started_at = std::time::Instant::now();
        let _engine_total = self.telemetry.span(Phase::EngineTotal);
        let mut state = self.boot(workload);
        self.restore_state(workload, &mut state, snapshot)?;
        self.drive(workload, &mut state, None);
        Ok(self.finish(workload, state, started_at))
    }

    /// Restore a snapshot, drive the engine further to `at_secs`, and
    /// re-serialize — advancing a checkpointed run to a later boundary
    /// without replaying its prefix. The meta-scheduling loop in
    /// `fig_whatif` leapfrogs snapshots this way from one capacity event
    /// to the next.
    pub fn resume_until(
        &self,
        workload: &[WorkloadVm],
        snapshot: &[u8],
        at_secs: f64,
    ) -> CheckpointResult<Vec<u8>> {
        let _engine_total = self.telemetry.span(Phase::EngineTotal);
        let mut state = self.boot(workload);
        self.restore_state(workload, &mut state, snapshot)?;
        self.drive(workload, &mut state, Some(at_secs));
        Ok(self.serialize_state(workload, &state, at_secs))
    }

    /// The simulated time a snapshot was taken at, without restoring it.
    pub fn snapshot_time(snapshot: &[u8]) -> CheckpointResult<f64> {
        let mut r = ByteReader::with_header(snapshot)?;
        r.get_f64()
    }

    /// Build the engine's working state: the cluster manager, the optional
    /// autoscaler, the fully scheduled event queue and the per-VM
    /// bookkeeping — everything `drive` advances, and everything a
    /// snapshot restores over.
    fn boot(&self, workload: &[WorkloadVm]) -> EngineState {
        // One persistent worker pool is shared by every parallel section of
        // the run — shard heapify, record init, utilisation sampling,
        // snapshotting and the placement ranking fan-out — instead of each
        // section respawning scoped threads. Sized for the wider of the two
        // parallelism knobs; absent entirely for fully sequential runs.
        let pool_threads = self.shards.count().max(self.placement_engine.workers());
        let pool = (pool_threads > 1).then(|| Arc::new(WorkerPool::new(pool_threads)));
        let manager = ClusterManager::new(&self.config, self.mode.clone())
            .with_migration_cost(self.migration_cost)
            .with_transfer_policy(self.transfer_policy)
            .with_restore_policy(self.restore_policy)
            .with_cache_regrowth(self.cache_regrowth)
            .with_placement_engine(self.placement_engine)
            .with_worker_pool(pool.clone())
            .with_telemetry(self.telemetry.clone());
        // The autoscaler exists only for enabled policies: a Disabled run
        // schedules no scale events and touches no autoscaler state, so it
        // is bit-identical to a run of the engine before autoscaling
        // existed (pinned by the golden regression tests).
        let autoscaler = (self.autoscale_policy.is_enabled() && !self.elastic_apps.is_empty())
            .then(|| Autoscaler::new(self.autoscale_policy, self.elastic_apps.clone()));

        // Schedule every event up front. The queue's deterministic total
        // order (time, then kind, then id) makes the run independent of
        // insertion order: departures precede capacity changes precede
        // arrivals at equal timestamps, so back-to-back VMs never
        // artificially overlap and simultaneous arrivals see the already
        // shrunk server. The event list is routed into per-shard heaps and
        // heapified in parallel; popping merges the shard heads under the
        // same total order, so the shard count never changes the run.
        let events: Vec<(f64, SimEvent)> = {
            let _schedule = self.telemetry.span(Phase::ScheduleBuild);
            let mut events: Vec<(f64, SimEvent)> =
                Vec::with_capacity(workload.len() * 2 + self.schedule.len());
            let mut horizon: f64 = 0.0;
            for (i, vm) in workload.iter().enumerate() {
                events.push((vm.arrival_secs, SimEvent::Arrival(i)));
                events.push((vm.departure_secs, SimEvent::Departure(i)));
                horizon = horizon.max(vm.departure_secs);
            }
            for change in self.schedule.changes() {
                let event = if change.is_reclaim {
                    SimEvent::CapacityReclaim {
                        server: change.server,
                        available_fraction: change.available_fraction,
                    }
                } else {
                    SimEvent::CapacityRestore {
                        server: change.server,
                        available_fraction: change.available_fraction,
                    }
                };
                events.push((change.time_secs, event));
            }
            if let Some(interval) = self.utilization_tick_secs {
                let mut t = 0.0;
                while t <= horizon {
                    events.push((t, SimEvent::UtilizationTick));
                    t += interval;
                }
            }
            if let Some(autoscaler) = &autoscaler {
                // Bootstrap scale-outs launch each app's initial pool.
                events.extend(autoscaler.initial_events());
            }
            events
        };
        let queue = ShardedEventQueue::build_with_workers(
            self.shards,
            self.config.num_servers,
            workload.len(),
            events,
            &self.telemetry,
            pool.as_deref(),
        );

        // Working state.
        let (index_of, records) = {
            let _init = self.telemetry.span(Phase::RecordInit);
            let index_of: HashMap<VmId, usize> = workload
                .iter()
                .enumerate()
                .map(|(i, vm)| (vm.spec.id, i))
                .collect();
            (index_of, self.initial_records(workload, pool.as_deref()))
        };
        EngineState {
            pool,
            manager,
            autoscaler,
            queue,
            index_of,
            records,
            running: vec![false; workload.len()],
            migrations: Vec::new(),
            utilization: Vec::new(),
            events_processed: 0,
            auditor: (!self.audit.is_off()).then(|| Auditor::new(self.audit)),
        }
    }

    /// The main event loop: pop events in the queue's global total order
    /// and dispatch them. With `stop_secs` set the loop stops at the first
    /// event **after** that time, leaving it queued — an event boundary a
    /// checkpoint can serialize; `None` drains the queue.
    fn drive(&self, workload: &[WorkloadVm], state: &mut EngineState, stop_secs: Option<f64>) {
        let EngineState {
            pool,
            manager,
            autoscaler,
            queue,
            index_of,
            records,
            running,
            migrations,
            utilization,
            events_processed,
            auditor,
        } = state;
        loop {
            if let Some(stop) = stop_secs {
                match queue.peek_time() {
                    Some(time) if time <= stop => {}
                    _ => break,
                }
            }
            // Time the k-way shard-head merge separately from the event
            // handlers it feeds.
            let popped = {
                let _merge = self.telemetry.span(Phase::CoordinatorMerge);
                queue.pop()
            };
            let Some((time, event)) = popped else { break };
            *events_processed += 1;
            match event {
                SimEvent::Arrival(i) => {
                    let _span = self.telemetry.span(Phase::Arrival);
                    // PlacementRank nests inside place_vm and is
                    // subtracted from this span's self time.
                    let result = manager.place_vm(workload[i].spec.clone());
                    if self.telemetry.wants(TelemetryEventKind::Arrival) {
                        let outcome = match &result {
                            PlacementResult::Rejected => "rejected",
                            PlacementResult::Placed { .. } => "placed",
                            PlacementResult::PlacedWithDeflation { .. } => "placed_with_deflation",
                            PlacementResult::PlacedWithPreemption { .. } => {
                                "placed_with_preemption"
                            }
                        };
                        self.telemetry.log_event(
                            TelemetryEventKind::Arrival,
                            time,
                            &[
                                ("vm", EventField::U64(workload[i].spec.id.0)),
                                ("outcome", EventField::Str(outcome)),
                            ],
                        );
                    }
                    let touched_server = match result {
                        PlacementResult::Rejected => {
                            records[i].outcome = VmOutcome::Rejected;
                            None
                        }
                        PlacementResult::PlacedWithPreemption {
                            server,
                            ref preempted,
                        } => {
                            records[i].outcome = VmOutcome::Completed;
                            running[i] = true;
                            for victim in preempted {
                                if let Some(&vi) = index_of.get(victim) {
                                    records[vi].outcome = VmOutcome::Preempted { at_secs: time };
                                    running[vi] = false;
                                } else if let Some(autoscaler) = autoscaler.as_mut() {
                                    // A preempted elastic replica must
                                    // leave the autoscaler's pool, or it
                                    // would count as active forever and
                                    // block its own replacement.
                                    autoscaler.on_replica_evicted(*victim);
                                }
                            }
                            Some(server)
                        }
                        PlacementResult::Placed { server }
                        | PlacementResult::PlacedWithDeflation { server, .. } => {
                            records[i].outcome = VmOutcome::Completed;
                            running[i] = true;
                            Some(server)
                        }
                    };
                    if let Some(server) = touched_server {
                        Self::record_allocations(manager, server, index_of, records, running, time);
                    }
                }
                SimEvent::Departure(i) => {
                    let _span = self.telemetry.span(Phase::Departure);
                    if self.telemetry.wants(TelemetryEventKind::Departure) {
                        self.telemetry.log_event(
                            TelemetryEventKind::Departure,
                            time,
                            &[
                                ("vm", EventField::U64(workload[i].spec.id.0)),
                                (
                                    "was_running",
                                    EventField::Str(if running[i] { "yes" } else { "no" }),
                                ),
                            ],
                        );
                    }
                    if running[i] {
                        let vm = workload[i].spec.id;
                        let server = manager.locate(vm);
                        // A mid-transfer departure also frees (and
                        // reinflates) the in-flight destination server.
                        let dest = manager.in_flight_destination(vm);
                        let _ = manager.remove_vm(vm);
                        running[i] = false;
                        for server in [server, dest].into_iter().flatten() {
                            Self::record_allocations(
                                manager, server, index_of, records, running, time,
                            );
                        }
                    }
                }
                SimEvent::CapacityReclaim {
                    server,
                    available_fraction,
                } => {
                    let _span = self.telemetry.span(Phase::ReclaimLadder);
                    {
                        let _sampling = self.telemetry.span(Phase::UtilizationSampling);
                        self.observe_utilizations(
                            manager,
                            workload,
                            running,
                            time,
                            pool.as_deref(),
                        );
                    }
                    let outcome = manager.reclaim_capacity(server, available_fraction, time);
                    if self.telemetry.wants(TelemetryEventKind::CapacityReclaim) {
                        self.telemetry.log_event(
                            TelemetryEventKind::CapacityReclaim,
                            time,
                            &[
                                ("server", EventField::U64(u64::from(server.0))),
                                ("available_fraction", EventField::F64(available_fraction)),
                                ("victims", EventField::U64(outcome.victims.len() as u64)),
                                (
                                    "migrations_started",
                                    EventField::U64(outcome.started.len() as u64),
                                ),
                            ],
                        );
                    }
                    Self::apply_capacity_outcome(
                        manager, &outcome, time, index_of, records, running, migrations, queue,
                        autoscaler,
                    );
                }
                SimEvent::CapacityRestore {
                    server,
                    available_fraction,
                } => {
                    let _span = self.telemetry.span(Phase::ReclaimLadder);
                    {
                        let _sampling = self.telemetry.span(Phase::UtilizationSampling);
                        self.observe_utilizations(
                            manager,
                            workload,
                            running,
                            time,
                            pool.as_deref(),
                        );
                    }
                    let outcome = manager.restore_capacity(
                        server,
                        available_fraction,
                        self.migrate_back,
                        time,
                    );
                    if self.telemetry.wants(TelemetryEventKind::CapacityRestore) {
                        self.telemetry.log_event(
                            TelemetryEventKind::CapacityRestore,
                            time,
                            &[
                                ("server", EventField::U64(u64::from(server.0))),
                                ("available_fraction", EventField::F64(available_fraction)),
                                (
                                    "migrations_started",
                                    EventField::U64(outcome.started.len() as u64),
                                ),
                            ],
                        );
                    }
                    Self::apply_capacity_outcome(
                        manager, &outcome, time, index_of, records, running, migrations, queue,
                        autoscaler,
                    );
                }
                SimEvent::MigrationComplete { migration } => {
                    let _span = self.telemetry.span(Phase::MigrationCompletion);
                    let outcome = manager.complete_migration(migration, time);
                    if self.telemetry.wants(TelemetryEventKind::MigrationComplete) {
                        self.telemetry.log_event(
                            TelemetryEventKind::MigrationComplete,
                            time,
                            &[
                                ("migration", EventField::U64(migration)),
                                ("completed", EventField::U64(outcome.migrated.len() as u64)),
                            ],
                        );
                    }
                    Self::apply_capacity_outcome(
                        manager, &outcome, time, index_of, records, running, migrations, queue,
                        autoscaler,
                    );
                }
                SimEvent::UtilizationTick => {
                    let _span = self.telemetry.span(Phase::UtilizationSampling);
                    // Per-server values are read shard-parallel; the
                    // cross-server fold stays sequential in server order so
                    // the f64 sum is bit-identical for every shard count.
                    let (used, capacity) = manager.cpu_usage_snapshot(self.shards);
                    let value = if capacity <= 0.0 {
                        0.0
                    } else {
                        used / capacity
                    };
                    utilization.push((time, value));
                    if self.telemetry.wants(TelemetryEventKind::UtilizationTick) {
                        self.telemetry.log_event(
                            TelemetryEventKind::UtilizationTick,
                            time,
                            &[("utilization", EventField::F64(value))],
                        );
                    }
                    // Autoscaling decisions hang off the same ticks: the
                    // autoscaler observes each app against the settled
                    // cluster state and schedules ScaleOut / ScaleIn
                    // events at the coordinator — deterministic at any
                    // shard count.
                    if let Some(autoscaler) = autoscaler.as_mut() {
                        let _decide = self.telemetry.span(Phase::Autoscale);
                        for (t, event) in autoscaler.on_tick(time, &*manager) {
                            queue.push(t, event);
                        }
                    }
                    // Memory-ledger sampling rides the utilisation-tick
                    // cadence: per-subsystem byte gauges plus the live
                    // VmRSS ground truth. Gauges only — skipped entirely
                    // when telemetry is off, and never consulted by any
                    // decision path.
                    if self.telemetry.enabled()
                        && (utilization.len() as u64).is_multiple_of(self.memory_sample_every_ticks)
                    {
                        self.publish_memory(
                            workload,
                            manager,
                            queue,
                            index_of,
                            records,
                            running,
                            migrations,
                            utilization,
                            autoscaler.as_ref(),
                        );
                    }
                }
                SimEvent::ScaleOut { app } => {
                    let _span = self.telemetry.span(Phase::Autoscale);
                    if self.telemetry.wants(TelemetryEventKind::ScaleOut) {
                        self.telemetry.log_event(
                            TelemetryEventKind::ScaleOut,
                            time,
                            &[("app", EventField::U64(u64::from(app)))],
                        );
                    }
                    let Some(scaler) = autoscaler.as_mut() else {
                        continue;
                    };
                    let touched = scaler.on_scale_out(app, time, manager);
                    // Under the preemption baseline a replica launch can
                    // kill resident workload VMs — and other replicas;
                    // reconcile both (deflation and migration-only
                    // launches never preempt).
                    if matches!(self.mode, ReclamationMode::Preemption) {
                        for (i, record) in records.iter_mut().enumerate() {
                            if running[i] && manager.locate(workload[i].spec.id).is_none() {
                                record.outcome = VmOutcome::Preempted { at_secs: time };
                                running[i] = false;
                            }
                        }
                        scaler.reconcile_lost(&*manager);
                    }
                    for server in touched {
                        Self::record_allocations(manager, server, index_of, records, running, time);
                    }
                }
                SimEvent::ScaleIn { app } => {
                    let _span = self.telemetry.span(Phase::Autoscale);
                    if self.telemetry.wants(TelemetryEventKind::ScaleIn) {
                        self.telemetry.log_event(
                            TelemetryEventKind::ScaleIn,
                            time,
                            &[("app", EventField::U64(u64::from(app)))],
                        );
                    }
                    let Some(autoscaler) = autoscaler.as_mut() else {
                        continue;
                    };
                    for server in autoscaler.on_scale_in(app, time, manager) {
                        Self::record_allocations(manager, server, index_of, records, running, time);
                    }
                }
            }
            // The audit point: after the event's handler has settled, the
            // enabled checkers re-verify the engine's invariants against
            // the state the handler left behind. Strictly read-only; the
            // run fails fast on the first violation (every later number
            // would be untrustworthy), after logging it to the event log.
            if let Some(auditor) = auditor.as_mut() {
                if let Some(violation) =
                    auditor.after_event(*events_processed, time, manager, autoscaler.as_ref())
                {
                    if self.telemetry.wants(TelemetryEventKind::AuditViolation) {
                        self.telemetry.log_event(
                            TelemetryEventKind::AuditViolation,
                            time,
                            &[
                                ("checker", EventField::Str(violation.checker)),
                                ("event", EventField::U64(violation.event_id)),
                                (
                                    "server",
                                    EventField::U64(
                                        violation.server.map_or(u64::MAX, |s| u64::from(s.0)),
                                    ),
                                ),
                            ],
                        );
                    }
                    panic!("{violation}");
                }
            }
        }
    }

    /// Assemble the [`SimResult`] from a drained engine state. Wall-clock
    /// time is measured from `started_at` — the current portion of the
    /// run only, so a resumed run reports its own wall time while every
    /// *simulation* field (including the cumulative `events_processed`)
    /// matches the uninterrupted run.
    fn finish(
        &self,
        workload: &[WorkloadVm],
        state: EngineState,
        started_at: std::time::Instant,
    ) -> SimResult {
        // Final memory-ledger publish: runs without utilisation ticks
        // still report settled `mem.*` gauges (and the scale-sweep's
        // before-picture relies on exactly this).
        if self.telemetry.enabled() {
            self.publish_memory(
                workload,
                &state.manager,
                &state.queue,
                &state.index_of,
                &state.records,
                &state.running,
                &state.migrations,
                &state.utilization,
                state.autoscaler.as_ref(),
            );
        }
        let EngineState {
            manager,
            autoscaler,
            records,
            migrations,
            utilization,
            events_processed,
            ..
        } = state;
        debug_assert!(manager.check_invariants());
        let _assembly = self.telemetry.span(Phase::ResultAssembly);
        let overcommitment = crate::spec::overcommitment_of(
            workload,
            self.config.server_capacity,
            self.config.num_servers,
        );
        let autoscale = autoscaler.map(Autoscaler::into_stats).unwrap_or_default();
        // Final-state metrics are published exactly once, from settled
        // counters, so snapshots are deterministic at any shard count.
        manager.publish_metrics();
        autoscale.publish_metrics(&self.telemetry);
        self.telemetry
            .gauge_set("engine.events_processed", events_processed as f64);
        self.telemetry
            .gauge_set("engine.shards", self.shards.count() as f64);
        SimResult {
            records,
            counters: manager.counters(),
            transient: manager.transient_counters(),
            scheduler: manager.scheduler_stats(),
            autoscale,
            migrations,
            utilization,
            num_servers: self.config.num_servers,
            overcommitment,
            policy_name: self.mode.name().to_string(),
            runtime: RunStats {
                wall_clock_secs: started_at.elapsed().as_secs_f64(),
                events_processed,
                shards: self.shards.count(),
            },
        }
    }

    /// Publish the per-subsystem memory ledger into the telemetry metrics
    /// registry: one deterministic `mem.<subsystem>` byte gauge per owner
    /// (see [`MemoryLedger`]) plus `mem.accounted_total`, and alongside
    /// them the live `mem.rss_kib` VmRSS reading — the OS-level ground
    /// truth the accounted gauges are compared against by `fig_memory`
    /// (absent off Linux). Caller guards on `telemetry.enabled()`.
    #[allow(clippy::too_many_arguments)]
    fn publish_memory(
        &self,
        workload: &[WorkloadVm],
        manager: &ClusterManager,
        queue: &ShardedEventQueue,
        index_of: &HashMap<VmId, usize>,
        records: &[VmRecord],
        running: &[bool],
        migrations: &[MigrationEvent],
        utilization: &[(f64, f64)],
        autoscaler: Option<&Autoscaler>,
    ) {
        use deflate_core::mem::{map_entry_bytes, vec_bytes};
        use std::mem::size_of;
        let mut ledger = MemoryLedger::new();
        // The sink's own footprint first, measured before this publish
        // grows the registry with the `mem.*` entries themselves.
        ledger.record("telemetry", self.telemetry.accounted_bytes());
        manager.record_memory(&mut ledger);
        ledger.record("event_queue", queue.accounted_bytes());
        ledger.record(
            "vm_records",
            vec_bytes(records)
                + records.iter().map(VmRecord::accounted_bytes).sum::<u64>()
                + vec_bytes(running)
                + index_of.len() as u64 * map_entry_bytes(size_of::<VmId>(), size_of::<usize>()),
        );
        ledger.record(
            "workload",
            vec_bytes(workload)
                + workload
                    .iter()
                    .map(WorkloadVm::accounted_bytes)
                    .sum::<u64>(),
        );
        ledger.record("migration_log", vec_bytes(migrations));
        ledger.record("utilization", vec_bytes(utilization));
        if let Some(autoscaler) = autoscaler {
            ledger.record("autoscaler", autoscaler.accounted_bytes());
        }
        ledger.publish(&self.telemetry);
        if let Some(rss) = deflate_telemetry::rss_kib() {
            self.telemetry.gauge_set("mem.rss_kib", rss);
        }
    }

    /// Serialize a paused engine state as versioned snapshot bytes. The
    /// layout (all little-endian, maps sorted, queue in pop order) is
    /// golden-pinned by `tests/checkpoint_restore.rs`; changing it
    /// requires bumping [`deflate_core::checkpoint::SNAPSHOT_VERSION`].
    /// No wall-clock or otherwise host-dependent value is ever written,
    /// so two snapshots of the same run at the same boundary are
    /// byte-identical across machines, shard counts and telemetry modes.
    fn serialize_state(
        &self,
        workload: &[WorkloadVm],
        state: &EngineState,
        at_secs: f64,
    ) -> Vec<u8> {
        let mut w = ByteWriter::with_header();
        w.put_f64(at_secs);
        w.put_usize(workload.len());
        w.put_u64(state.events_processed);
        let queued = state.queue.contents();
        w.put_usize(queued.len());
        for (time, event) in queued {
            w.put_f64(time);
            event.write_snapshot(&mut w);
        }
        state.manager.write_snapshot(&mut w);
        w.put_bool(state.autoscaler.is_some());
        if let Some(autoscaler) = &state.autoscaler {
            autoscaler.write_snapshot(&mut w);
        }
        for (record, &running) in state.records.iter().zip(&state.running) {
            w.put_bool(running);
            match record.outcome {
                VmOutcome::Completed => w.put_u8(0),
                VmOutcome::Rejected => w.put_u8(1),
                VmOutcome::Preempted { at_secs } => {
                    w.put_u8(2);
                    w.put_f64(at_secs);
                }
                VmOutcome::Evicted { at_secs } => {
                    w.put_u8(3);
                    w.put_f64(at_secs);
                }
            }
            w.put_usize(record.allocation_history.len());
            for &(t, f) in &record.allocation_history {
                w.put_f64(t);
                w.put_f64(f);
            }
        }
        w.put_usize(state.migrations.len());
        for m in &state.migrations {
            w.put_f64(m.time_secs);
            w.put_u64(m.vm.0);
            w.put_u32(m.from.0);
            w.put_u32(m.to.0);
            w.put_f64(m.duration_secs);
            w.put_f64(m.volume_mb);
            w.put_bool(m.back);
        }
        w.put_usize(state.utilization.len());
        for &(t, u) in &state.utilization {
            w.put_f64(t);
            w.put_f64(u);
        }
        w.into_bytes()
    }

    /// Overwrite a freshly booted engine state with a snapshot's contents.
    /// The queue is rebuilt through the ordinary sharded construction —
    /// snapshot bytes store events in the canonical pop order, and routing
    /// is content-addressed, so restoring under any shard count reproduces
    /// the same pops.
    fn restore_state(
        &self,
        workload: &[WorkloadVm],
        state: &mut EngineState,
        snapshot: &[u8],
    ) -> CheckpointResult<()> {
        let mut r = ByteReader::with_header(snapshot)?;
        let _at_secs = r.get_f64()?;
        let num_vms = r.get_usize()?;
        if num_vms != workload.len() {
            return Err(CheckpointError::Corrupt(format!(
                "snapshot taken over {} workload VMs, restoring with {}",
                num_vms,
                workload.len()
            )));
        }
        state.events_processed = r.get_u64()?;
        let queued = r.get_usize()?;
        let mut events = Vec::with_capacity(queued);
        for _ in 0..queued {
            let time = r.get_f64()?;
            let event = SimEvent::read_snapshot(&mut r)?;
            events.push((time, event));
        }
        state.queue = ShardedEventQueue::build_with_workers(
            self.shards,
            self.config.num_servers,
            workload.len(),
            events,
            &self.telemetry,
            state.pool.as_deref(),
        );
        state.manager.read_snapshot(&mut r)?;
        let has_autoscaler = r.get_bool()?;
        if has_autoscaler != state.autoscaler.is_some() {
            return Err(CheckpointError::Corrupt(
                "snapshot and simulation disagree on autoscaling".to_string(),
            ));
        }
        if let Some(autoscaler) = state.autoscaler.as_mut() {
            autoscaler.read_snapshot(&mut r)?;
        }
        for i in 0..workload.len() {
            state.running[i] = r.get_bool()?;
            state.records[i].outcome = match r.get_u8()? {
                0 => VmOutcome::Completed,
                1 => VmOutcome::Rejected,
                2 => VmOutcome::Preempted {
                    at_secs: r.get_f64()?,
                },
                3 => VmOutcome::Evicted {
                    at_secs: r.get_f64()?,
                },
                other => {
                    return Err(CheckpointError::Corrupt(format!(
                        "unknown VmOutcome discriminant {other}"
                    )))
                }
            };
            let points = r.get_usize()?;
            let mut history = Vec::with_capacity(points);
            for _ in 0..points {
                let t = r.get_f64()?;
                let f = r.get_f64()?;
                history.push((t, f));
            }
            state.records[i].allocation_history = history;
        }
        let migrations = r.get_usize()?;
        state.migrations = Vec::with_capacity(migrations);
        for _ in 0..migrations {
            state.migrations.push(MigrationEvent {
                time_secs: r.get_f64()?,
                vm: VmId(r.get_u64()?),
                from: ServerId(r.get_u32()?),
                to: ServerId(r.get_u32()?),
                duration_secs: r.get_f64()?,
                volume_mb: r.get_f64()?,
                back: r.get_bool()?,
            });
        }
        let samples = r.get_usize()?;
        state.utilization = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t = r.get_f64()?;
            let u = r.get_f64()?;
            state.utilization.push((t, u));
        }
        r.finish()
    }

    /// Build the per-VM record skeletons, fanning the spec/trace clones out
    /// to one worker per shard for large workloads. Record `i` depends only
    /// on workload entry `i`, so chunked construction is trivially
    /// bit-identical to the sequential pass.
    fn initial_records(&self, workload: &[WorkloadVm], pool: Option<&WorkerPool>) -> Vec<VmRecord> {
        let make = |vm: &WorkloadVm| VmRecord {
            spec: vm.spec.clone(),
            arrival_secs: vm.arrival_secs,
            departure_secs: vm.departure_secs,
            outcome: VmOutcome::Rejected,
            allocation_history: Vec::new(),
            cpu_util: vm.cpu_util.clone(),
        };
        if !self.shards.is_parallel() {
            return workload.iter().map(make).collect();
        }
        let spans = self.shards.spans(workload.len());
        let mut partials: Vec<Option<Vec<VmRecord>>> = (0..spans.len()).map(|_| None).collect();
        {
            let mut tasks: Vec<Task<'_>> = Vec::with_capacity(spans.len());
            let mut slots = partials.as_mut_slice();
            for span in &spans {
                let (slot, rest) = slots.split_first_mut().expect("one slot per span");
                slots = rest;
                let chunk = &workload[span.clone()];
                tasks.push(Box::new(move || {
                    *slot = Some(chunk.iter().map(make).collect());
                }));
            }
            run_tasks(pool, self.shards.count(), tasks);
        }
        let mut records = Vec::with_capacity(workload.len());
        for partial in partials {
            records.extend(partial.expect("record-init worker ran"));
        }
        records
    }

    /// Refresh every running VM's recent-utilisation sample from its trace
    /// ahead of a capacity event, so the migration cost model estimates
    /// transfers from current behaviour rather than boot-time idleness.
    /// Only consequential — and only paid for — when a dirty-rate model
    /// is active: without one the samples could never influence an
    /// estimate, so the O(workload) pass is skipped.
    ///
    /// Sharded runs split the pass twice: trace sampling (pure per-VM
    /// reads) fans out over workload chunks, and the per-domain history
    /// updates fan out over server shards
    /// ([`ClusterManager::observe_vm_utilizations`]). Chunks concatenate
    /// in workload order and each domain receives exactly one sample per
    /// pass, so both halves are bit-identical to the sequential loop.
    fn observe_utilizations(
        &self,
        manager: &mut ClusterManager,
        workload: &[WorkloadVm],
        running: &[bool],
        time: f64,
        pool: Option<&WorkerPool>,
    ) {
        if manager.migration_cost().dirty_rate_mbps <= 0.0 {
            return;
        }
        let sample = |(i, vm): (usize, &WorkloadVm)| {
            running[i].then(|| (vm.spec.id, vm.cpu_util.at(time - vm.arrival_secs)))
        };
        let samples: Vec<(VmId, f64)> = if self.shards.is_parallel() {
            let spans = self.shards.spans(workload.len());
            let mut partials: Vec<Option<Vec<(VmId, f64)>>> =
                (0..spans.len()).map(|_| None).collect();
            {
                let mut tasks: Vec<Task<'_>> = Vec::with_capacity(spans.len());
                let mut slots = partials.as_mut_slice();
                for span in &spans {
                    let (slot, rest) = slots.split_first_mut().expect("one slot per span");
                    slots = rest;
                    let base = span.start;
                    let chunk = &workload[span.clone()];
                    tasks.push(Box::new(move || {
                        *slot = Some(
                            chunk
                                .iter()
                                .enumerate()
                                .filter_map(|(k, vm)| sample((base + k, vm)))
                                .collect(),
                        );
                    }));
                }
                run_tasks(pool, self.shards.count(), tasks);
            }
            partials
                .into_iter()
                .flat_map(|p| p.expect("trace-sampling worker ran"))
                .collect()
        } else {
            workload.iter().enumerate().filter_map(sample).collect()
        };
        manager.observe_vm_utilizations(&samples, self.shards);
    }

    /// Fold a capacity-change outcome into the per-VM bookkeeping: evicted
    /// VMs stop running, completed migrations are logged with their
    /// transfer cost, newly started transfers get a `MigrationComplete`
    /// event scheduled, and allocation histories of every touched server
    /// are brought up to date. Victims outside the workload are elastic
    /// replicas — they have no record, but the autoscaler must drop them
    /// from its pool (and count the loss).
    #[allow(clippy::too_many_arguments)]
    fn apply_capacity_outcome(
        manager: &ClusterManager,
        outcome: &crate::manager::CapacityChangeOutcome,
        time: f64,
        index_of: &HashMap<VmId, usize>,
        records: &mut [VmRecord],
        running: &mut [bool],
        migrations: &mut Vec<MigrationEvent>,
        queue: &mut ShardedEventQueue,
        autoscaler: &mut Option<Autoscaler>,
    ) {
        for &victim in &outcome.victims {
            if let Some(&vi) = index_of.get(&victim) {
                records[vi].outcome = VmOutcome::Evicted { at_secs: time };
                running[vi] = false;
            } else if let Some(autoscaler) = autoscaler.as_mut() {
                autoscaler.on_replica_evicted(victim);
            }
        }
        for migration in &outcome.migrated {
            migrations.push(MigrationEvent {
                time_secs: time,
                vm: migration.vm,
                from: migration.from,
                to: migration.to,
                duration_secs: migration.duration_secs,
                volume_mb: migration.volume_mb,
                back: migration.back,
            });
        }
        for started in &outcome.started {
            queue.push(
                started.event_secs,
                SimEvent::MigrationComplete {
                    migration: started.id,
                },
            );
        }
        for &server in &outcome.touched {
            Self::record_allocations(manager, server, index_of, records, running, time);
        }
    }

    /// Append allocation change-points for every VM on the touched server
    /// whose CPU fraction changed since the last recorded value.
    fn record_allocations(
        manager: &ClusterManager,
        server: deflate_core::vm::ServerId,
        index_of: &HashMap<VmId, usize>,
        records: &mut [VmRecord],
        running: &[bool],
        time: f64,
    ) {
        for (vm, fraction) in manager.allocation_fractions_on(server) {
            let Some(&i) = index_of.get(&vm) else {
                continue;
            };
            if !running[i] {
                continue;
            }
            let history = &mut records[i].allocation_history;
            match history.last() {
                Some(&(_, last)) if (last - fraction).abs() < 1e-9 => {}
                _ => history.push((time, fraction)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::PlacementKind;
    use crate::spec::{workload_from_azure, MinAllocationRule};
    use deflate_core::placement::PartitionScheme;
    use deflate_core::policy::{DeterministicDeflation, PriorityDeflation, ProportionalDeflation};
    use deflate_core::resources::ResourceVector;
    use deflate_hypervisor::domain::DeflationMechanism;
    use deflate_traces::azure::{AzureTraceConfig, AzureTraceGenerator};
    use deflate_transient::signal::{CapacityProfile, TransientConfig};
    use std::sync::Arc;

    fn small_workload(num_vms: usize, seed: u64) -> Vec<crate::spec::WorkloadVm> {
        let traces = AzureTraceGenerator::generate(&AzureTraceConfig {
            num_vms,
            duration_hours: 12.0,
            seed,
            ..Default::default()
        });
        workload_from_azure(&traces, MinAllocationRule::None)
    }

    fn config(num_servers: usize) -> ClusterConfig {
        ClusterConfig {
            num_servers,
            server_capacity: ResourceVector::cpu_mem(48_000.0, 131_072.0),
            placement: PlacementKind::CosineFitness,
            partitions: PartitionScheme::None,
            mechanism: DeflationMechanism::Transparent,
        }
    }

    fn proportional() -> ReclamationMode {
        ReclamationMode::Deflation(Arc::new(ProportionalDeflation::default()))
    }

    #[test]
    fn uncontended_cluster_admits_everything_with_no_loss() {
        let workload = small_workload(150, 11);
        let servers =
            crate::spec::min_cluster_size(&workload, ResourceVector::cpu_mem(48_000.0, 131_072.0));
        let sim = ClusterSimulation::new(config(servers), proportional());
        let result = sim.run(&workload);
        assert_eq!(result.records.len(), workload.len());
        assert!(result.failure_probability() < 0.02);
        assert!(result.mean_throughput_loss() < 0.01);
        assert!(result.counters.attempts() >= workload.len());
        // No capacity schedule → no transient activity.
        assert_eq!(result.transient.reclaim_events, 0);
        assert!(result.migrations.is_empty());
    }

    #[test]
    fn overcommitted_cluster_deflates_instead_of_failing() {
        let workload = small_workload(200, 13);
        let baseline =
            crate::spec::min_cluster_size(&workload, ResourceVector::cpu_mem(48_000.0, 131_072.0));
        let shrunk = (baseline as f64 / 1.5).floor().max(1.0) as usize;
        let sim = ClusterSimulation::new(config(shrunk), proportional());
        let result = sim.run(&workload);
        // Deflation happened.
        assert!(result.counters.admitted_with_deflation > 0 || result.deflated_vm_fraction() > 0.0);
        // Failure probability stays far below the preemption baseline.
        let preemption_sim = ClusterSimulation::new(config(shrunk), ReclamationMode::Preemption);
        let preemption = preemption_sim.run(&workload);
        assert!(
            result.failure_probability() <= preemption.failure_probability(),
            "deflation failures {} should not exceed preemption failures {}",
            result.failure_probability(),
            preemption.failure_probability()
        );
        // Throughput loss is modest at ~50% overcommitment (Figure 21).
        assert!(
            result.mean_throughput_loss() < 0.10,
            "throughput loss {}",
            result.mean_throughput_loss()
        );
    }

    #[test]
    fn policies_are_all_runnable() {
        let workload = small_workload(100, 17);
        let servers =
            (crate::spec::min_cluster_size(&workload, ResourceVector::cpu_mem(48_000.0, 131_072.0))
                as f64
                / 1.4)
                .floor()
                .max(1.0) as usize;
        for mode in [
            ReclamationMode::Deflation(Arc::new(ProportionalDeflation::default())),
            ReclamationMode::Deflation(Arc::new(PriorityDeflation::default())),
            ReclamationMode::Deflation(Arc::new(DeterministicDeflation::binary())),
            ReclamationMode::Preemption,
            ReclamationMode::MigrationOnly,
        ] {
            let name = mode.name().to_string();
            let sim = ClusterSimulation::new(config(servers), mode);
            let result = sim.run(&workload);
            assert_eq!(result.policy_name, name);
            assert!(result.failure_probability() <= 1.0);
            assert!(result.mean_throughput_loss() <= 1.0);
        }
    }

    #[test]
    fn allocation_histories_start_at_admission() {
        let workload = small_workload(80, 23);
        let servers =
            crate::spec::min_cluster_size(&workload, ResourceVector::cpu_mem(48_000.0, 131_072.0));
        let sim = ClusterSimulation::new(config(servers), proportional());
        let result = sim.run(&workload);
        for record in result
            .records
            .iter()
            .filter(|r| matches!(r.outcome, VmOutcome::Completed))
        {
            assert!(!record.allocation_history.is_empty());
            let (t0, f0) = record.allocation_history[0];
            assert!(t0 >= record.arrival_secs - 1e-9);
            assert!(f0 > 0.0 && f0 <= 1.0 + 1e-9);
            // Histories are time-ordered.
            for w in record.allocation_history.windows(2) {
                assert!(w[0].0 <= w[1].0);
            }
        }
    }

    #[test]
    fn partitioned_placement_runs() {
        let workload = small_workload(120, 29);
        let baseline =
            crate::spec::min_cluster_size(&workload, ResourceVector::cpu_mem(48_000.0, 131_072.0));
        let mut cfg = config((baseline as f64 / 1.3).floor().max(2.0) as usize);
        cfg.partitions = PartitionScheme::ByPriority { pools: 2 };
        let sim = ClusterSimulation::new(cfg, proportional());
        let result = sim.run(&workload);
        assert!(result.failure_probability() <= 1.0);
    }

    #[test]
    fn capacity_schedule_triggers_reclaims_and_utilization_ticks() {
        let workload = small_workload(150, 31);
        let servers =
            crate::spec::min_cluster_size(&workload, ResourceVector::cpu_mem(48_000.0, 131_072.0));
        let schedule = deflate_transient::signal::CapacitySchedule::generate(&TransientConfig {
            num_servers: servers,
            transient_fraction: 1.0,
            duration_secs: 12.0 * 3600.0,
            profile: CapacityProfile::SquareWave {
                period_secs: 2.0 * 3600.0,
                keep_fraction: 0.5,
                duty: 0.4,
            },
            seed: 5,
        });
        assert!(!schedule.is_empty());
        let sim = ClusterSimulation::new(config(servers), proportional())
            .with_capacity_schedule(schedule.clone())
            .with_utilization_ticks(1800.0)
            .with_migrate_back(true);
        let result = sim.run(&workload);
        assert_eq!(result.transient.reclaim_events, schedule.reclaim_count());
        assert!(result.transient.restore_events > 0);
        assert!(!result.utilization.is_empty());
        for &(_, u) in &result.utilization {
            assert!((0.0..=1.0 + 1e-9).contains(&u));
        }
        // Deterministic: the same run again yields the identical result.
        let again = ClusterSimulation::new(config(servers), proportional())
            .with_capacity_schedule(schedule)
            .with_utilization_ticks(1800.0)
            .with_migrate_back(true)
            .run(&workload);
        assert_eq!(result, again);
    }

    #[test]
    fn sharded_engine_is_bit_identical_to_sequential() {
        let workload = small_workload(160, 41);
        let servers =
            (crate::spec::min_cluster_size(&workload, ResourceVector::cpu_mem(48_000.0, 131_072.0))
                as f64
                / 1.3)
                .floor()
                .max(2.0) as usize;
        let schedule = deflate_transient::signal::CapacitySchedule::generate(&TransientConfig {
            num_servers: servers,
            transient_fraction: 1.0,
            duration_secs: 12.0 * 3600.0,
            profile: CapacityProfile::SquareWave {
                period_secs: 2.0 * 3600.0,
                keep_fraction: 0.5,
                duty: 0.4,
            },
            seed: 7,
        });
        // A dirty-rate model makes the utilisation-observation pass (the
        // sharded trace sampling) actually run.
        let cost = deflate_hypervisor::migration::MigrationCostModel::lan_default()
            .with_budget_mbps(1250.0)
            .with_deadline_secs(30.0)
            .with_dirty_rate(800.0, 2.0);
        let run = |shards: usize| {
            ClusterSimulation::new(config(servers), proportional())
                .with_capacity_schedule(schedule.clone())
                .with_utilization_ticks(1800.0)
                .with_migrate_back(true)
                .with_migration_cost(cost)
                .with_shards(deflate_core::shard::ShardConfig::with_shards(shards))
                .run(&workload)
        };
        let sequential = run(1);
        assert!(sequential.runtime.events_processed > 0);
        assert_eq!(sequential.runtime.shards, 1);
        for shards in [2, 3, 4, 8] {
            let sharded = run(shards);
            assert_eq!(sharded.runtime.shards, shards);
            assert_eq!(
                sequential, sharded,
                "{shards}-shard run diverged from the sequential engine"
            );
        }
    }

    #[test]
    fn autoscaling_runs_deterministically_and_disabled_is_bit_identical() {
        let workload = small_workload(120, 43);
        let servers =
            crate::spec::min_cluster_size(&workload, ResourceVector::cpu_mem(48_000.0, 131_072.0))
                + 2;
        let schedule = deflate_transient::signal::CapacitySchedule::generate(&TransientConfig {
            num_servers: servers,
            transient_fraction: 1.0,
            duration_secs: 12.0 * 3600.0,
            profile: CapacityProfile::spot_market_default(),
            seed: 11,
        });
        let app = deflate_autoscale::ElasticApp {
            app: 0,
            replica_size: ResourceVector::cpu_mem(4000.0, 8192.0),
            replica_priority: deflate_core::vm::Priority::new(0.5),
            replica_rate_rps: 100.0,
            replica_ids_from: 1_000_000,
            min_replicas: 2,
            max_replicas: 12,
            demand: deflate_autoscale::DemandCurve::Diurnal {
                base_rps: 150.0,
                peak_rps: 600.0,
                period_secs: 4.0 * 3600.0,
                peak_at_secs: 0.0,
            },
            start_secs: 0.0,
        };
        let run = |policy: deflate_core::policy::AutoscalePolicy| {
            ClusterSimulation::new(config(servers), proportional())
                .with_capacity_schedule(schedule.clone())
                .with_utilization_ticks(600.0)
                .with_migrate_back(true)
                .with_autoscale(policy, vec![app.clone()])
                .run(&workload)
        };
        // Disabled autoscaling is bit-identical to never configuring it.
        let plain = ClusterSimulation::new(config(servers), proportional())
            .with_capacity_schedule(schedule.clone())
            .with_utilization_ticks(600.0)
            .with_migrate_back(true)
            .run(&workload);
        let disabled = run(deflate_core::policy::AutoscalePolicy::Disabled);
        assert_eq!(plain, disabled);
        assert_eq!(disabled.autoscale, Default::default());
        // Enabled policies actually scale, deterministically.
        for policy in [
            deflate_core::policy::AutoscalePolicy::target_tracking(),
            deflate_core::policy::AutoscalePolicy::deflation_aware(),
        ] {
            let result = run(policy);
            assert!(result.autoscale.launches > 0, "{}", policy.name());
            assert!(result.autoscale.ticks > 0);
            assert!(result.autoscale.scale_actions() > 0);
            assert!(result.autoscale.replicas_conserved());
            // Every surviving replica is still accounted for by the
            // cluster: conservation holds at the manager level too.
            assert_eq!(result, run(policy), "{} not deterministic", policy.name());
        }
        // The deflation-aware run parks and reinflates.
        let da = run(deflate_core::policy::AutoscalePolicy::deflation_aware());
        assert!(da.autoscale.parks > 0);
        assert!(da.autoscale.reinflations > 0);
    }

    #[test]
    fn preemption_baseline_keeps_the_replica_ledger_consistent() {
        // A deliberately tight preemption-mode cluster: arrivals preempt
        // residents — including elastic replicas — and every such loss
        // must reach the autoscaler's books.
        let workload = small_workload(150, 47);
        let servers =
            (crate::spec::min_cluster_size(&workload, ResourceVector::cpu_mem(48_000.0, 131_072.0))
                as f64
                / 1.6)
                .floor()
                .max(2.0) as usize;
        let app = deflate_autoscale::ElasticApp {
            app: 0,
            replica_size: ResourceVector::cpu_mem(4000.0, 8192.0),
            replica_priority: deflate_core::vm::Priority::new(0.2),
            replica_rate_rps: 100.0,
            replica_ids_from: 1_000_000,
            min_replicas: 2,
            max_replicas: 10,
            demand: deflate_autoscale::DemandCurve::Constant { rps: 500.0 },
            start_secs: 0.0,
        };
        let result = ClusterSimulation::new(config(servers), ReclamationMode::Preemption)
            .with_utilization_ticks(600.0)
            .with_autoscale(
                deflate_core::policy::AutoscalePolicy::target_tracking(),
                vec![app],
            )
            .run(&workload);
        let stats = &result.autoscale;
        assert!(stats.launches > 0);
        assert!(
            stats.replicas_lost > 0,
            "the tight cluster should preempt replicas: {stats:?}"
        );
        assert!(stats.replicas_conserved(), "{stats:?}");
    }

    #[test]
    fn checkpoint_resume_is_bit_identical_to_uninterrupted_run() {
        let workload = small_workload(140, 53);
        let servers =
            (crate::spec::min_cluster_size(&workload, ResourceVector::cpu_mem(48_000.0, 131_072.0))
                as f64
                / 1.3)
                .floor()
                .max(2.0) as usize;
        let schedule = deflate_transient::signal::CapacitySchedule::generate(&TransientConfig {
            num_servers: servers,
            transient_fraction: 1.0,
            duration_secs: 12.0 * 3600.0,
            profile: CapacityProfile::SquareWave {
                period_secs: 2.0 * 3600.0,
                keep_fraction: 0.5,
                duty: 0.4,
            },
            seed: 19,
        });
        let cost = deflate_hypervisor::migration::MigrationCostModel::lan_default()
            .with_budget_mbps(1250.0)
            .with_deadline_secs(30.0)
            .with_dirty_rate(800.0, 2.0);
        let sim = ClusterSimulation::new(config(servers), proportional())
            .with_capacity_schedule(schedule)
            .with_utilization_ticks(1800.0)
            .with_migrate_back(true)
            .with_migration_cost(cost);
        let full = sim.run(&workload);
        for at_secs in [0.0, 3.0 * 3600.0, 7.5 * 3600.0, 13.0 * 3600.0] {
            let snapshot = sim.checkpoint(&workload, at_secs);
            assert!(
                ClusterSimulation::snapshot_time(&snapshot).unwrap() == at_secs,
                "snapshot timestamp survives the round trip"
            );
            let resumed = sim.resume(&workload, &snapshot).unwrap();
            assert_eq!(full, resumed, "restore diverged at T={at_secs}");
            assert_eq!(
                full.runtime.events_processed, resumed.runtime.events_processed,
                "events_processed must be cumulative across the boundary"
            );
            // Snapshot bytes are a pure function of the simulated prefix:
            // taking the same checkpoint again (different wall clock) must
            // produce the identical bytes.
            assert_eq!(
                snapshot,
                sim.checkpoint(&workload, at_secs),
                "snapshot bytes must be wall-clock independent at T={at_secs}"
            );
        }
        // Leapfrog: advance an early snapshot instead of re-running the
        // prefix; the continuation must match a direct checkpoint.
        let early = sim.checkpoint(&workload, 2.0 * 3600.0);
        let advanced = sim.resume_until(&workload, &early, 9.0 * 3600.0).unwrap();
        assert_eq!(advanced, sim.checkpoint(&workload, 9.0 * 3600.0));
        let resumed = sim.resume(&workload, &advanced).unwrap();
        assert_eq!(full, resumed);
    }

    #[test]
    fn deflation_survives_reclamation_better_than_preemption() {
        let workload = small_workload(180, 37);
        let servers =
            crate::spec::min_cluster_size(&workload, ResourceVector::cpu_mem(48_000.0, 131_072.0));
        let schedule = deflate_transient::signal::CapacitySchedule::generate(&TransientConfig {
            num_servers: servers,
            transient_fraction: 1.0,
            duration_secs: 12.0 * 3600.0,
            profile: CapacityProfile::SquareWave {
                period_secs: 3.0 * 3600.0,
                keep_fraction: 0.4,
                duty: 0.3,
            },
            seed: 9,
        });
        let run = |mode: ReclamationMode| {
            ClusterSimulation::new(config(servers), mode)
                .with_capacity_schedule(schedule.clone())
                .run(&workload)
        };
        let deflation = run(proportional());
        let preemption = run(ReclamationMode::Preemption);
        assert!(
            deflation.failure_probability() < preemption.failure_probability(),
            "deflation {} should beat preemption {}",
            deflation.failure_probability(),
            preemption.failure_probability()
        );
        // Preemption killed VMs; deflation absorbed (most of) the shock.
        assert!(preemption.transient.reclamation_victims > 0);
        assert!(
            deflation.transient.absorbed_by_deflation > 0 || deflation.transient.migrations > 0
        );
    }
}
