//! Trace-driven discrete-event cluster simulation (§7.1.2, §7.4).
//!
//! The simulator replays a VM workload (arrival time, departure time, size,
//! CPU-utilisation history — normally derived from the synthetic Azure trace)
//! against a [`ClusterManager`], recording for every VM when it was admitted,
//! rejected or preempted and how its CPU allocation changed over time. The
//! resulting [`SimResult`] yields the three cluster-level metrics of §7.4:
//! reclamation-failure probability (Figure 20), throughput loss (Figure 21)
//! and revenue (Figure 22).

use crate::manager::{ClusterConfig, ClusterManager, PlacementResult, ReclamationMode};
use crate::metrics::{SimResult, VmOutcome, VmRecord};
use crate::spec::WorkloadVm;
use deflate_core::vm::VmId;
use std::collections::HashMap;

/// One simulation event.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    /// A VM (index into the workload) arrives.
    Arrival(usize),
    /// A VM (index into the workload) departs.
    Departure(usize),
}

/// The trace-driven cluster simulator.
pub struct ClusterSimulation {
    config: ClusterConfig,
    mode: ReclamationMode,
}

impl ClusterSimulation {
    /// Create a simulation with the given cluster configuration and
    /// reclamation mode.
    pub fn new(config: ClusterConfig, mode: ReclamationMode) -> Self {
        ClusterSimulation { config, mode }
    }

    /// Replay the workload and return the per-VM records and aggregate
    /// counters.
    pub fn run(&self, workload: &[WorkloadVm]) -> SimResult {
        let mut manager = ClusterManager::new(&self.config, self.mode.clone());

        // Build the event list: departures sort before arrivals at the same
        // timestamp so back-to-back VMs do not artificially overlap.
        let mut events: Vec<(f64, u8, Event)> = Vec::with_capacity(workload.len() * 2);
        for (i, vm) in workload.iter().enumerate() {
            events.push((vm.arrival_secs, 1, Event::Arrival(i)));
            events.push((vm.departure_secs, 0, Event::Departure(i)));
        }
        events.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });

        // Working state.
        let index_of: HashMap<VmId, usize> = workload
            .iter()
            .enumerate()
            .map(|(i, vm)| (vm.spec.id, i))
            .collect();
        let mut records: Vec<VmRecord> = workload
            .iter()
            .map(|vm| VmRecord {
                spec: vm.spec.clone(),
                arrival_secs: vm.arrival_secs,
                departure_secs: vm.departure_secs,
                outcome: VmOutcome::Rejected,
                allocation_history: Vec::new(),
                cpu_util: vm.cpu_util.clone(),
            })
            .collect();
        let mut running: Vec<bool> = vec![false; workload.len()];

        for (time, _, event) in events {
            match event {
                Event::Arrival(i) => {
                    let result = manager.place_vm(workload[i].spec.clone());
                    let touched_server = match result {
                        PlacementResult::Rejected => {
                            records[i].outcome = VmOutcome::Rejected;
                            None
                        }
                        PlacementResult::PlacedWithPreemption {
                            server,
                            ref preempted,
                        } => {
                            records[i].outcome = VmOutcome::Completed;
                            running[i] = true;
                            for victim in preempted {
                                if let Some(&vi) = index_of.get(victim) {
                                    records[vi].outcome =
                                        VmOutcome::Preempted { at_secs: time };
                                    running[vi] = false;
                                }
                            }
                            Some(server)
                        }
                        PlacementResult::Placed { server }
                        | PlacementResult::PlacedWithDeflation { server, .. } => {
                            records[i].outcome = VmOutcome::Completed;
                            running[i] = true;
                            Some(server)
                        }
                    };
                    if let Some(server) = touched_server {
                        Self::record_allocations(
                            &manager, server, &index_of, &mut records, &running, time,
                        );
                    }
                }
                Event::Departure(i) => {
                    if running[i] {
                        let server = manager.locate(workload[i].spec.id);
                        let _ = manager.remove_vm(workload[i].spec.id);
                        running[i] = false;
                        if let Some(server) = server {
                            Self::record_allocations(
                                &manager, server, &index_of, &mut records, &running, time,
                            );
                        }
                    }
                }
            }
        }

        debug_assert!(manager.check_invariants());
        let overcommitment = crate::spec::overcommitment_of(
            workload,
            self.config.server_capacity,
            self.config.num_servers,
        );
        SimResult {
            records,
            counters: manager.counters(),
            num_servers: self.config.num_servers,
            overcommitment,
            policy_name: self.mode.name().to_string(),
        }
    }

    /// Append allocation change-points for every VM on the touched server
    /// whose CPU fraction changed since the last recorded value.
    fn record_allocations(
        manager: &ClusterManager,
        server: deflate_core::vm::ServerId,
        index_of: &HashMap<VmId, usize>,
        records: &mut [VmRecord],
        running: &[bool],
        time: f64,
    ) {
        for (vm, fraction) in manager.allocation_fractions_on(server) {
            let Some(&i) = index_of.get(&vm) else { continue };
            if !running[i] {
                continue;
            }
            let history = &mut records[i].allocation_history;
            match history.last() {
                Some(&(_, last)) if (last - fraction).abs() < 1e-9 => {}
                _ => history.push((time, fraction)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::PlacementKind;
    use crate::spec::{workload_from_azure, MinAllocationRule};
    use deflate_core::placement::PartitionScheme;
    use deflate_core::policy::{DeterministicDeflation, PriorityDeflation, ProportionalDeflation};
    use deflate_core::resources::ResourceVector;
    use deflate_hypervisor::domain::DeflationMechanism;
    use deflate_traces::azure::{AzureTraceConfig, AzureTraceGenerator};
    use std::sync::Arc;

    fn small_workload(num_vms: usize, seed: u64) -> Vec<crate::spec::WorkloadVm> {
        let traces = AzureTraceGenerator::generate(&AzureTraceConfig {
            num_vms,
            duration_hours: 12.0,
            seed,
            ..Default::default()
        });
        workload_from_azure(&traces, MinAllocationRule::None)
    }

    fn config(num_servers: usize) -> ClusterConfig {
        ClusterConfig {
            num_servers,
            server_capacity: ResourceVector::cpu_mem(48_000.0, 131_072.0),
            placement: PlacementKind::CosineFitness,
            partitions: PartitionScheme::None,
            mechanism: DeflationMechanism::Transparent,
        }
    }

    fn proportional() -> ReclamationMode {
        ReclamationMode::Deflation(Arc::new(ProportionalDeflation::default()))
    }

    #[test]
    fn uncontended_cluster_admits_everything_with_no_loss() {
        let workload = small_workload(150, 11);
        let servers = crate::spec::min_cluster_size(
            &workload,
            ResourceVector::cpu_mem(48_000.0, 131_072.0),
        );
        let sim = ClusterSimulation::new(config(servers), proportional());
        let result = sim.run(&workload);
        assert_eq!(result.records.len(), workload.len());
        assert!(result.failure_probability() < 0.02);
        assert!(result.mean_throughput_loss() < 0.01);
        assert!(result.counters.attempts() >= workload.len());
    }

    #[test]
    fn overcommitted_cluster_deflates_instead_of_failing() {
        let workload = small_workload(200, 13);
        let baseline = crate::spec::min_cluster_size(
            &workload,
            ResourceVector::cpu_mem(48_000.0, 131_072.0),
        );
        let shrunk = (baseline as f64 / 1.5).floor().max(1.0) as usize;
        let sim = ClusterSimulation::new(config(shrunk), proportional());
        let result = sim.run(&workload);
        // Deflation happened.
        assert!(result.counters.admitted_with_deflation > 0 || result.deflated_vm_fraction() > 0.0);
        // Failure probability stays far below the preemption baseline.
        let preemption_sim =
            ClusterSimulation::new(config(shrunk), ReclamationMode::Preemption);
        let preemption = preemption_sim.run(&workload);
        assert!(
            result.failure_probability() <= preemption.failure_probability(),
            "deflation failures {} should not exceed preemption failures {}",
            result.failure_probability(),
            preemption.failure_probability()
        );
        // Throughput loss is modest at ~50% overcommitment (Figure 21).
        assert!(
            result.mean_throughput_loss() < 0.10,
            "throughput loss {}",
            result.mean_throughput_loss()
        );
    }

    #[test]
    fn policies_are_all_runnable() {
        let workload = small_workload(100, 17);
        let servers = (crate::spec::min_cluster_size(
            &workload,
            ResourceVector::cpu_mem(48_000.0, 131_072.0),
        ) as f64
            / 1.4)
            .floor()
            .max(1.0) as usize;
        for mode in [
            ReclamationMode::Deflation(Arc::new(ProportionalDeflation::default())),
            ReclamationMode::Deflation(Arc::new(PriorityDeflation::default())),
            ReclamationMode::Deflation(Arc::new(DeterministicDeflation::binary())),
            ReclamationMode::Preemption,
        ] {
            let name = mode.name().to_string();
            let sim = ClusterSimulation::new(config(servers), mode);
            let result = sim.run(&workload);
            assert_eq!(result.policy_name, name);
            assert!(result.failure_probability() <= 1.0);
            assert!(result.mean_throughput_loss() <= 1.0);
        }
    }

    #[test]
    fn allocation_histories_start_at_admission() {
        let workload = small_workload(80, 23);
        let servers = crate::spec::min_cluster_size(
            &workload,
            ResourceVector::cpu_mem(48_000.0, 131_072.0),
        );
        let sim = ClusterSimulation::new(config(servers), proportional());
        let result = sim.run(&workload);
        for record in result
            .records
            .iter()
            .filter(|r| matches!(r.outcome, VmOutcome::Completed))
        {
            assert!(!record.allocation_history.is_empty());
            let (t0, f0) = record.allocation_history[0];
            assert!(t0 >= record.arrival_secs - 1e-9);
            assert!(f0 > 0.0 && f0 <= 1.0 + 1e-9);
            // Histories are time-ordered.
            for w in record.allocation_history.windows(2) {
                assert!(w[0].0 <= w[1].0);
            }
        }
    }

    #[test]
    fn partitioned_placement_runs() {
        let workload = small_workload(120, 29);
        let baseline = crate::spec::min_cluster_size(
            &workload,
            ResourceVector::cpu_mem(48_000.0, 131_072.0),
        );
        let mut cfg = config((baseline as f64 / 1.3).floor().max(2.0) as usize);
        cfg.partitions = PartitionScheme::ByPriority { pools: 2 };
        let sim = ClusterSimulation::new(cfg, proportional());
        let result = sim.run(&workload);
        assert!(result.failure_probability() <= 1.0);
    }
}
