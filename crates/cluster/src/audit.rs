//! The online invariant auditor — the runtime half of the audit
//! observatory.
//!
//! An [`Auditor`] is built from an [`AuditSpec`] and consulted by the
//! simulation engine **after every processed event**. Each enabled checker
//! re-derives an invariant the engine is supposed to maintain
//! incrementally and reports the first violation as an
//! [`AuditViolation`] naming the checker, the event id, the simulated
//! time and (when one is implicated) the server — enough to replay a run
//! up to the exact event that corrupted state.
//!
//! # Checkers
//!
//! * **capacity** — every server's effective usage, minus allocations
//!   pledged to leave on an in-flight transfer, fits its (possibly
//!   reclaimed) capacity (`ClusterManager::audit_capacity`).
//! * **bandwidth_ledger** — every live in-flight transfer holds a
//!   reservation on both endpoints' scheduler ledgers. Cancelled
//!   transfers legitimately leave reservations to drain, so only the
//!   in-flight ⊆ ledger direction is an invariant
//!   (`ClusterManager::audit_bandwidth_ledger`).
//! * **monotonicity** — event-queue delivery times never go backwards.
//! * **placement_index** — servers not marked dirty have cached placement
//!   views identical to a fresh rescan
//!   (`ClusterManager::audit_placement_index`). A full rescan is
//!   `O(servers × VMs)`, so this checker runs on a sampled cadence
//!   ([`AuditSpec::placement_sample_rate`]).
//! * **replica_ledger** — the autoscaler's conservation law holds
//!   *mid-run*: every replica ever launched is in the pool (active or
//!   parked), was retired, or was lost.
//!
//! # Contracts
//!
//! Auditing is **off by default** and the default path is golden-pinned.
//! Checkers are strictly read-only: a run with every checker enabled is
//! bit-identical to the same run with auditing off (pinned by the
//! determinism tests). The engine fails fast on the first violation —
//! an invariant breach means every later number is untrustworthy.

use deflate_autoscale::Autoscaler;
use deflate_core::audit::AuditSpec;
use deflate_core::vm::ServerId;

use crate::manager::ClusterManager;

/// What a single audit probe found, before the [`Auditor`] stamps it with
/// the event id and time. Crate-internal: probes live on
/// [`ClusterManager`] (they need field access), the auditor wraps their
/// findings into [`AuditViolation`]s.
pub(crate) struct AuditFinding {
    /// The server implicated, when the invariant is per-server.
    pub server: Option<ServerId>,
    /// Human-readable diagnostic.
    pub detail: String,
}

/// A failed invariant check, stamped with where in the run it fired.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditViolation {
    /// Which checker fired (`"capacity"`, `"bandwidth_ledger"`,
    /// `"monotonicity"`, `"placement_index"`, `"replica_ledger"`).
    pub checker: &'static str,
    /// Sequence number of the event after which the violation was
    /// detected (the engine's processed-event counter).
    pub event_id: u64,
    /// Simulated time of that event, seconds.
    pub time_secs: f64,
    /// The server implicated, when the invariant is per-server.
    pub server: Option<ServerId>,
    /// Human-readable diagnostic.
    pub detail: String,
}

impl std::fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "audit violation [{}] after event {} at t={:.3}s",
            self.checker, self.event_id, self.time_secs
        )?;
        if let Some(server) = self.server {
            write!(f, " (server {})", server.0)?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Runs the enabled checkers after every engine event.
#[derive(Debug, Clone)]
pub struct Auditor {
    spec: AuditSpec,
    /// Delivery time of the last audited event (`-∞` before the first),
    /// for the monotonicity checker.
    last_event_secs: f64,
    /// Events audited so far, for the placement-index sampling cadence.
    audited_events: u64,
}

impl Auditor {
    /// An auditor running the checkers enabled in `spec`.
    pub fn new(spec: AuditSpec) -> Self {
        Auditor {
            spec,
            last_event_secs: f64::NEG_INFINITY,
            audited_events: 0,
        }
    }

    /// The spec this auditor runs.
    pub fn spec(&self) -> AuditSpec {
        self.spec
    }

    /// True when no checker is enabled (the engine then skips the audit
    /// call entirely).
    pub fn is_off(&self) -> bool {
        self.spec.is_off()
    }

    /// Run the enabled checkers after one processed event. `event_id` is
    /// the engine's processed-event counter, `time_secs` the event's
    /// delivery time. Returns the first violation found, if any; the
    /// caller is expected to fail fast on it. Strictly read-only on the
    /// manager and autoscaler.
    pub fn after_event(
        &mut self,
        event_id: u64,
        time_secs: f64,
        manager: &ClusterManager,
        autoscaler: Option<&Autoscaler>,
    ) -> Option<AuditViolation> {
        self.audited_events += 1;
        let stamp = |checker: &'static str, finding: AuditFinding| AuditViolation {
            checker,
            event_id,
            time_secs,
            server: finding.server,
            detail: finding.detail,
        };
        if self.spec.monotonicity {
            if time_secs < self.last_event_secs {
                return Some(AuditViolation {
                    checker: "monotonicity",
                    event_id,
                    time_secs,
                    server: None,
                    detail: format!(
                        "event time went backwards: t={:.6}s after t={:.6}s",
                        time_secs, self.last_event_secs
                    ),
                });
            }
            self.last_event_secs = time_secs;
        }
        if self.spec.capacity {
            if let Err(finding) = manager.audit_capacity() {
                return Some(stamp("capacity", finding));
            }
        }
        if self.spec.bandwidth_ledger {
            if let Err(finding) = manager.audit_bandwidth_ledger(time_secs) {
                return Some(stamp("bandwidth_ledger", finding));
            }
        }
        if self.spec.placement_index
            && self
                .audited_events
                .is_multiple_of(self.spec.placement_sample_rate())
        {
            if let Err(finding) = manager.audit_placement_index() {
                return Some(stamp("placement_index", finding));
            }
        }
        if self.spec.replica_ledger {
            if let Some(autoscaler) = autoscaler {
                let stats = autoscaler.stats();
                let (active, parked) = autoscaler.live_replicas();
                let accounted = stats.retirements + stats.replicas_lost + active + parked;
                if stats.launches != accounted {
                    return Some(AuditViolation {
                        checker: "replica_ledger",
                        event_id,
                        time_secs,
                        server: None,
                        detail: format!(
                            "replica ledger unbalanced: {} launched but {} accounted \
                             ({} retired + {} lost + {} active + {} parked)",
                            stats.launches,
                            accounted,
                            stats.retirements,
                            stats.replicas_lost,
                            active,
                            parked
                        ),
                    });
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::{ClusterConfig, ClusterManager, PlacementKind, ReclamationMode};
    use deflate_autoscale::{AutoscalePolicy, DemandCurve, ElasticApp};
    use deflate_core::checkpoint::{ByteReader, ByteWriter};
    use deflate_core::placement::PartitionScheme;
    use deflate_core::policy::ProportionalDeflation;
    use deflate_core::resources::ResourceVector;
    use deflate_core::vm::{Priority, VmClass, VmId, VmSpec};
    use deflate_hypervisor::domain::DeflationMechanism;
    use deflate_hypervisor::migration::MigrationCostModel;
    use std::sync::Arc;

    fn small_cluster() -> ClusterManager {
        let config = ClusterConfig {
            num_servers: 2,
            server_capacity: ResourceVector::cpu_mem(16_000.0, 32_768.0),
            placement: PlacementKind::CosineFitness,
            partitions: PartitionScheme::None,
            mechanism: DeflationMechanism::Transparent,
        };
        ClusterManager::new(
            &config,
            ReclamationMode::Deflation(Arc::new(ProportionalDeflation::default())),
        )
    }

    fn vm(id: u64) -> VmSpec {
        VmSpec::deflatable(
            VmId(id),
            VmClass::Interactive,
            ResourceVector::cpu_mem(4_000.0, 8_192.0),
        )
        .with_priority(Priority::new(0.5))
    }

    #[test]
    fn healthy_cluster_passes_every_checker() {
        let mut cluster = small_cluster();
        assert!(cluster.place_vm(vm(1)).is_placed());
        let mut auditor = Auditor::new(AuditSpec::all());
        assert!(auditor.after_event(1, 0.0, &cluster, None).is_none());
        assert!(auditor.after_event(2, 10.0, &cluster, None).is_none());
    }

    #[test]
    fn default_spec_is_off_and_audits_nothing() {
        let auditor = Auditor::new(AuditSpec::default());
        assert!(auditor.is_off());
    }

    // Mutation: shrink a server's capacity under a resident VM. The
    // capacity checker must name the corrupted server.
    #[test]
    fn capacity_checker_catches_a_shrunk_server() {
        let mut cluster = small_cluster();
        assert!(cluster.place_vm(vm(1)).is_placed());
        let placed_on = cluster.locate(VmId(1)).unwrap();
        let idx = (0..cluster.num_servers())
            .find(|&i| cluster.views()[i].id == placed_on)
            .unwrap();
        cluster.controller_mut(idx).server_mut().capacity = ResourceVector::cpu_mem(1.0, 1.0);
        let mut auditor = Auditor::new(AuditSpec::all());
        let violation = auditor
            .after_event(7, 3.5, &cluster, None)
            .expect("capacity corruption must be detected");
        assert_eq!(violation.checker, "capacity");
        assert_eq!(violation.event_id, 7);
        assert_eq!(violation.server, Some(placed_on));
        assert!(violation.detail.contains("capacity conservation"));
    }

    // Mutation: an in-flight transfer with no backing reservation. The
    // bandwidth checker must fire; restoring both endpoints' entries (and
    // adding a *stale* orphan, which cancellations legitimately leave
    // behind) must satisfy it again.
    #[test]
    fn bandwidth_checker_requires_reservations_on_both_endpoints() {
        let mut cluster = small_cluster().with_migration_cost(MigrationCostModel::lan_default());
        cluster.inject_test_flight(VmId(9), 0, 1, 0.0, 30.0, 60.0);
        let mut auditor = Auditor::new(AuditSpec::all());
        let violation = auditor
            .after_event(3, 5.0, &cluster, None)
            .expect("missing reservation must be detected");
        assert_eq!(violation.checker, "bandwidth_ledger");
        assert!(violation.detail.contains("no backing reservation"));

        // Back the flight on both endpoints: the ledger balances again,
        // even with an extra orphan entry left by a cancelled transfer.
        cluster.scheduler_mut().ledger_mut(0).push(30.0);
        cluster.scheduler_mut().ledger_mut(1).push(30.0);
        cluster.scheduler_mut().ledger_mut(1).push(48.0);
        assert!(auditor.after_event(4, 5.0, &cluster, None).is_none());
    }

    // A transfer already resolved (event time in the past) needs no
    // reservation: lazy ledger pruning must not be reported as corruption.
    #[test]
    fn bandwidth_checker_ignores_resolved_flights() {
        let mut cluster = small_cluster().with_migration_cost(MigrationCostModel::lan_default());
        cluster.inject_test_flight(VmId(9), 0, 1, 0.0, 30.0, 60.0);
        let mut auditor = Auditor::new(AuditSpec::all());
        assert!(auditor.after_event(5, 30.0, &cluster, None).is_none());
    }

    // Mutation: touch a server behind the placement index's back (no
    // mark_server_dirty). The sampled consistency checker must catch the
    // stale clean entry.
    #[test]
    fn placement_checker_catches_an_unmarked_mutation() {
        let mut cluster = small_cluster();
        let untouched = 1;
        cluster
            .controller_mut(untouched)
            .server_mut()
            .create_domain(vm(42), DeflationMechanism::Transparent)
            .unwrap();
        let mut auditor = Auditor::new(AuditSpec::all().with_placement_sample_every(1));
        let violation = auditor
            .after_event(11, 1.0, &cluster, None)
            .expect("stale clean view must be detected");
        assert_eq!(violation.checker, "placement_index");
        assert!(violation.detail.contains("not dirty"));
    }

    // The same corruption goes unnoticed between samples: the cadence knob
    // really gates the expensive rescan.
    #[test]
    fn placement_checker_respects_the_sampling_cadence() {
        let mut cluster = small_cluster();
        cluster
            .controller_mut(0)
            .server_mut()
            .create_domain(vm(42), DeflationMechanism::Transparent)
            .unwrap();
        let mut auditor = Auditor::new(AuditSpec::all().with_placement_sample_every(2));
        // Odd audited-event counts skip the rescan; the second call lands
        // on the cadence and fires.
        assert!(auditor.after_event(1, 0.0, &cluster, None).is_none());
        let violation = auditor.after_event(2, 0.0, &cluster, None).unwrap();
        assert_eq!(violation.checker, "placement_index");
    }

    #[test]
    fn monotonicity_checker_catches_time_travel() {
        let cluster = small_cluster();
        let mut auditor = Auditor::new(AuditSpec::all());
        assert!(auditor.after_event(1, 10.0, &cluster, None).is_none());
        let violation = auditor
            .after_event(2, 5.0, &cluster, None)
            .expect("backwards time must be detected");
        assert_eq!(violation.checker, "monotonicity");
        assert!(violation.detail.contains("went backwards"));
        // Equal times are fine (simultaneous events share a timestamp).
        let mut ok = Auditor::new(AuditSpec::all());
        assert!(ok.after_event(1, 10.0, &cluster, None).is_none());
        assert!(ok.after_event(2, 10.0, &cluster, None).is_none());
    }

    // Mutation: restore an autoscaler snapshot whose stats claim launches
    // that no pool member, retirement or loss accounts for.
    #[test]
    fn replica_checker_catches_an_unbalanced_ledger() {
        let app = ElasticApp {
            app: 0,
            replica_size: ResourceVector::cpu_mem(4_000.0, 8_192.0),
            replica_priority: Priority::new(0.5),
            replica_rate_rps: 100.0,
            replica_ids_from: 1_000_000,
            min_replicas: 1,
            max_replicas: 4,
            demand: DemandCurve::Constant { rps: 50.0 },
            start_secs: 0.0,
        };
        let mut autoscaler = Autoscaler::new(AutoscalePolicy::deflation_aware(), vec![app]);
        let cluster = small_cluster();
        let mut auditor = Auditor::new(AuditSpec::all());
        assert!(auditor
            .after_event(1, 0.0, &cluster, Some(&autoscaler))
            .is_none());

        // Corrupt via the snapshot path: 1 app, empty pool, but 3 launches
        // on the books.
        let mut w = ByteWriter::new();
        w.put_usize(1); // apps
        w.put_usize(0); // members
        w.put_u64(0); // launched
        w.put_f64(0.0); // cooldown_until
        for count in [0usize, 0, 3, 0, 0, 0, 0, 0, 0, 0] {
            w.put_usize(count); // stats counters; launches = 3
        }
        w.put_f64(0.0); // setpoint_error_sum
        w.put_f64_slice(&[]); // latency samples
        w.put_usize(0); // latency dropped
        w.put_usize(0); // final_active
        w.put_usize(0); // final_parked
        let bytes = w.into_bytes();
        autoscaler
            .read_snapshot(&mut ByteReader::new(&bytes))
            .unwrap();

        let violation = auditor
            .after_event(2, 1.0, &cluster, Some(&autoscaler))
            .expect("unbalanced replica ledger must be detected");
        assert_eq!(violation.checker, "replica_ledger");
        assert!(violation.detail.contains("3 launched but 0 accounted"));
    }

    #[test]
    fn violations_render_with_full_context() {
        let violation = AuditViolation {
            checker: "capacity",
            event_id: 48_231,
            time_secs: 7_380.0,
            server: Some(deflate_core::vm::ServerId(1_042)),
            detail: "effective used exceeds capacity".to_string(),
        };
        let rendered = violation.to_string();
        assert!(rendered.contains("[capacity]"));
        assert!(rendered.contains("event 48231"));
        assert!(rendered.contains("t=7380.000s"));
        assert!(rendered.contains("server 1042"));
    }
}
