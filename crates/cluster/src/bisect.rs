//! Checkpoint-bisection divergence diagnosis — the post-mortem half of
//! the audit observatory.
//!
//! Two runs that are *expected* bit-identical (sequential vs sharded,
//! telemetry on vs off, or a refactor against its baseline) sometimes are
//! not. Eyeballing two multi-megabyte final states tells you *that* they
//! differ, not *where the run first went wrong*. This module answers the
//! second question with the checkpoint machinery itself:
//!
//! 1. [`bisect_divergence`] binary-searches simulated time, advancing both
//!    runs from the last known-identical snapshot via
//!    [`ClusterSimulation::resume_until`], until the first divergent
//!    window is narrower than the requested resolution;
//! 2. [`first_divergent_field`] then walks the two snapshots in lockstep
//!    along the exact [`write_snapshot`](crate::manager::ClusterManager::write_snapshot)
//!    byte layout and names the first field whose bits differ — e.g.
//!    `placement_index.dirty_len` or
//!    `manager.server[3].domain[17].guest.rss_mb`.
//!
//! Because every probe resumes from the known-identical prefix, a bisection
//! over a horizon `H` at resolution `r` costs `O(log2(H / r))` partial
//! replays instead of the `O(H / r)` full replays of a linear scan.
//!
//! The walk mirrors `serialize_state` field for field; the layout is
//! golden-pinned by `tests/checkpoint_restore.rs`, and
//! `snapshot_walk_consumes_every_byte` below fails if the two ever drift.

use deflate_core::checkpoint::{ByteReader, CheckpointError, CheckpointResult};
use deflate_core::resources::ResourceKind;

use crate::sim::ClusterSimulation;
use crate::spec::WorkloadVm;

/// The boundary used for the pre-first-event snapshot: no event fires at a
/// negative time, so `checkpoint(BOOT_SECS)` serializes freshly booted
/// state.
const BOOT_SECS: f64 = -1.0;

/// The first field, in snapshot-layout order, whose bits differ between
/// two snapshots taken at the same boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotDiff {
    /// Dotted path of the field in the snapshot layout, e.g.
    /// `placement_index.dirty_len` or `manager.in_flight[2].finish_secs`.
    pub field: String,
    /// The first run's value, rendered.
    pub a: String,
    /// The second run's value, rendered.
    pub b: String,
}

impl std::fmt::Display for SnapshotDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "field `{}` differs: a={}, b={}",
            self.field, self.a, self.b
        )
    }
}

/// Where a bisected pair of runs first stopped being bit-identical.
#[derive(Debug, Clone)]
pub struct DivergenceReport {
    /// Half-open window `(lo, hi]` of simulated seconds: the runs are
    /// bit-identical at `lo` and first observed divergent at `hi`. When a
    /// pair diverges before the first event (mismatched configuration),
    /// both bounds are the boot boundary.
    pub window_secs: (f64, f64),
    /// Events processed at the divergent boundary by each run — brackets
    /// the ordinal of the first divergent event.
    pub events_processed: (u64, u64),
    /// The first differing field of the divergent snapshot pair.
    pub diff: SnapshotDiff,
    /// Checkpoint/resume probes spent (two per bisection step).
    pub probes: usize,
}

impl std::fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "first divergence in window ({:.3}s, {:.3}s] after events (a: {}, b: {}): {} \
             [{} probes]",
            self.window_secs.0,
            self.window_secs.1,
            self.events_processed.0,
            self.events_processed.1,
            self.diff,
            self.probes
        )
    }
}

/// Binary-search the first divergent snapshot window between two runs of
/// the same workload under configurations expected bit-identical.
///
/// Both simulations replay `workload`; snapshots are compared at matched
/// boundaries. Returns `Ok(None)` when the runs are bit-identical at
/// `horizon_secs` (which, by the checkpoint contract, means they never
/// diverged inside it). Otherwise narrows the divergence to a window no
/// wider than `resolution_secs` and names the first differing field.
///
/// Probes advance from the last known-identical snapshot via
/// [`ClusterSimulation::resume_until`], so each bisection step costs one
/// partial replay per side, not a replay from time zero.
pub fn bisect_divergence(
    a: &ClusterSimulation,
    b: &ClusterSimulation,
    workload: &[WorkloadVm],
    horizon_secs: f64,
    resolution_secs: f64,
) -> CheckpointResult<Option<DivergenceReport>> {
    let resolution = resolution_secs.max(1e-9);
    let mut probes = 2;
    let end_a = a.checkpoint(workload, horizon_secs);
    let end_b = b.checkpoint(workload, horizon_secs);
    if first_divergent_field(&end_a, &end_b)?.is_none() {
        return Ok(None);
    }

    // The runs differ somewhere in (boot, horizon]. Establish the boot
    // boundary; a mismatch there means the *configurations* disagree
    // (different cluster shape or event schedule), not the dynamics.
    probes += 2;
    let boot_a = a.checkpoint(workload, BOOT_SECS);
    let boot_b = b.checkpoint(workload, BOOT_SECS);
    if let Some(diff) = first_divergent_field(&boot_a, &boot_b)? {
        return Ok(Some(DivergenceReport {
            window_secs: (BOOT_SECS, BOOT_SECS),
            events_processed: (events_processed_of(&boot_a)?, events_processed_of(&boot_b)?),
            diff,
            probes,
        }));
    }

    let mut lo = BOOT_SECS;
    let mut snap_lo = boot_a;
    let mut hi = horizon_secs;
    let (mut hi_a, mut hi_b) = (end_a, end_b);
    while hi - lo > resolution {
        let mid = lo + (hi - lo) / 2.0;
        if mid <= lo || mid >= hi {
            break; // f64 midpoints exhausted below the requested resolution
        }
        // The lo snapshots are bit-identical, so one buffer serves both
        // sides; each simulation resumes it under its own configuration.
        let mid_a = a.resume_until(workload, &snap_lo, mid)?;
        let mid_b = b.resume_until(workload, &snap_lo, mid)?;
        probes += 2;
        if first_divergent_field(&mid_a, &mid_b)?.is_none() {
            lo = mid;
            snap_lo = mid_a;
        } else {
            hi = mid;
            hi_a = mid_a;
            hi_b = mid_b;
        }
    }

    let diff = first_divergent_field(&hi_a, &hi_b)?
        .expect("bisection invariant: the hi boundary stays divergent");
    Ok(Some(DivergenceReport {
        window_secs: (lo, hi),
        events_processed: (events_processed_of(&hi_a)?, events_processed_of(&hi_b)?),
        diff,
        probes,
    }))
}

/// The engine's processed-event counter stored in a snapshot, without
/// restoring it.
fn events_processed_of(snapshot: &[u8]) -> CheckpointResult<u64> {
    let mut r = ByteReader::with_header(snapshot)?;
    r.get_f64()?; // at_secs
    r.get_usize()?; // workload length
    r.get_u64()
}

/// Walk two snapshots in lockstep along the engine's snapshot layout and
/// name the first field whose bits differ.
///
/// Returns `Ok(None)` for byte-identical snapshots. Errs when either
/// buffer is corrupt (bad header, truncated, unknown discriminant) —
/// corruption is a different failure than divergence and must not be
/// reported as a field.
pub fn first_divergent_field(a: &[u8], b: &[u8]) -> CheckpointResult<Option<SnapshotDiff>> {
    if a == b {
        return Ok(None);
    }
    let mut l = Lockstep {
        a: ByteReader::with_header(a)?,
        b: ByteReader::with_header(b)?,
    };
    match walk_snapshot(&mut l) {
        Ok(()) => {
            // Bytes differ but every field matched: one buffer carries
            // trailing bytes the layout does not describe.
            Ok(Some(SnapshotDiff {
                field: "trailing_bytes".to_string(),
                a: format!("{} left", l.a.remaining()),
                b: format!("{} left", l.b.remaining()),
            }))
        }
        Err(Stop::Diverged(diff)) => Ok(Some(*diff)),
        Err(Stop::Corrupt(e)) => Err(e),
    }
}

/// Why a lockstep walk stopped early.
enum Stop {
    Diverged(Box<SnapshotDiff>),
    Corrupt(CheckpointError),
}

impl From<CheckpointError> for Stop {
    fn from(e: CheckpointError) -> Self {
        Stop::Corrupt(e)
    }
}

type Step<T> = Result<T, Stop>;

/// Two [`ByteReader`]s advanced field by field; the first mismatching
/// primitive aborts the walk with its dotted field name.
struct Lockstep<'s> {
    a: ByteReader<'s>,
    b: ByteReader<'s>,
}

impl Lockstep<'_> {
    fn diverged<T: std::fmt::Display>(name: impl FnOnce() -> String, a: T, b: T) -> Stop {
        Stop::Diverged(Box::new(SnapshotDiff {
            field: name(),
            a: a.to_string(),
            b: b.to_string(),
        }))
    }

    fn u8(&mut self, name: impl FnOnce() -> String) -> Step<u8> {
        let (a, b) = (self.a.get_u8()?, self.b.get_u8()?);
        if a != b {
            return Err(Self::diverged(name, a, b));
        }
        Ok(a)
    }

    fn bool(&mut self, name: impl FnOnce() -> String) -> Step<bool> {
        let (a, b) = (self.a.get_bool()?, self.b.get_bool()?);
        if a != b {
            return Err(Self::diverged(name, a, b));
        }
        Ok(a)
    }

    fn u32(&mut self, name: impl FnOnce() -> String) -> Step<u32> {
        let (a, b) = (self.a.get_u32()?, self.b.get_u32()?);
        if a != b {
            return Err(Self::diverged(name, a, b));
        }
        Ok(a)
    }

    fn u64(&mut self, name: impl FnOnce() -> String) -> Step<u64> {
        let (a, b) = (self.a.get_u64()?, self.b.get_u64()?);
        if a != b {
            return Err(Self::diverged(name, a, b));
        }
        Ok(a)
    }

    fn usize(&mut self, name: impl FnOnce() -> String) -> Step<usize> {
        let (a, b) = (self.a.get_usize()?, self.b.get_usize()?);
        if a != b {
            return Err(Self::diverged(name, a, b));
        }
        Ok(a)
    }

    /// Bit-exact comparison: the snapshot contract is bit-identity, so
    /// `-0.0` vs `0.0` or differing NaN payloads are real divergences.
    fn f64(&mut self, name: impl FnOnce() -> String) -> Step<f64> {
        let (a, b) = (self.a.get_f64()?, self.b.get_f64()?);
        if a.to_bits() != b.to_bits() {
            return Err(Self::diverged(name, a, b));
        }
        Ok(a)
    }

    fn f64_slice(&mut self, name: impl Fn() -> String) -> Step<()> {
        let (a, b) = (self.a.get_f64_vec()?, self.b.get_f64_vec()?);
        if a.len() != b.len() {
            return Err(Self::diverged(
                || format!("{}.len", name()),
                a.len(),
                b.len(),
            ));
        }
        for (i, (va, vb)) in a.iter().zip(&b).enumerate() {
            if va.to_bits() != vb.to_bits() {
                return Err(Self::diverged(|| format!("{}[{i}]", name()), va, vb));
            }
        }
        Ok(())
    }

    fn resources(&mut self, name: impl Fn() -> String) -> Step<()> {
        let (a, b) = (self.a.get_resources()?, self.b.get_resources()?);
        for kind in ResourceKind::ALL {
            if a[kind].to_bits() != b[kind].to_bits() {
                return Err(Self::diverged(
                    || format!("{}.{kind}", name()),
                    a[kind],
                    b[kind],
                ));
            }
        }
        Ok(())
    }

    fn vm_spec(&mut self, name: impl Fn() -> String) -> Step<()> {
        let (a, b) = (self.a.get_vm_spec()?, self.b.get_vm_spec()?);
        if a != b {
            return Err(Self::diverged(name, format!("{a:?}"), format!("{b:?}")));
        }
        Ok(())
    }
}

/// Mirror of `ClusterSimulation::serialize_state`.
fn walk_snapshot(l: &mut Lockstep<'_>) -> Step<()> {
    l.f64(|| "at_secs".into())?;
    let workload_len = l.usize(|| "workload_len".into())?;
    l.u64(|| "events_processed".into())?;
    let queued = l.usize(|| "queue.len".into())?;
    for i in 0..queued {
        walk_queued_event(l, i)?;
    }
    walk_manager(l)?;
    if l.bool(|| "autoscaler.present".into())? {
        walk_autoscaler(l)?;
    }
    for i in 0..workload_len {
        walk_vm_record(l, i)?;
    }
    let migrations = l.usize(|| "migration_log.len".into())?;
    for i in 0..migrations {
        let p = move || format!("migration_log[{i}]");
        l.f64(|| format!("{}.time_secs", p()))?;
        l.u64(|| format!("{}.vm", p()))?;
        l.u32(|| format!("{}.from", p()))?;
        l.u32(|| format!("{}.to", p()))?;
        l.f64(|| format!("{}.duration_secs", p()))?;
        l.f64(|| format!("{}.volume_mb", p()))?;
        l.bool(|| format!("{}.back", p()))?;
    }
    let samples = l.usize(|| "utilization.len".into())?;
    for i in 0..samples {
        l.f64(|| format!("utilization[{i}].time_secs"))?;
        l.f64(|| format!("utilization[{i}].value"))?;
    }
    Ok(())
}

/// Mirror of `SimEvent::write_snapshot` prefixed with its delivery time.
fn walk_queued_event(l: &mut Lockstep<'_>, i: usize) -> Step<()> {
    let p = move || format!("queue[{i}]");
    l.f64(|| format!("{}.time", p()))?;
    let kind = l.u8(|| format!("{}.kind", p()))?;
    match kind {
        // Departure / Arrival
        0 | 4 => {
            l.usize(|| format!("{}.vm_index", p()))?;
        }
        // MigrationComplete
        1 => {
            l.u64(|| format!("{}.migration", p()))?;
        }
        // CapacityRestore / CapacityReclaim
        2 | 3 => {
            l.u32(|| format!("{}.server", p()))?;
            l.f64(|| format!("{}.available_fraction", p()))?;
        }
        // ScaleOut / ScaleIn
        5 | 6 => {
            l.u32(|| format!("{}.app", p()))?;
        }
        // UtilizationTick carries no payload
        7 => {}
        other => {
            return Err(Stop::Corrupt(CheckpointError::Corrupt(format!(
                "unknown SimEvent discriminant {other} in queue[{i}]"
            ))))
        }
    }
    Ok(())
}

/// Mirror of `ClusterManager::write_snapshot`.
fn walk_manager(l: &mut Lockstep<'_>) -> Step<()> {
    let servers = l.usize(|| "manager.servers.len".into())?;
    for s in 0..servers {
        l.resources(move || format!("manager.server[{s}].capacity"))?;
        let domains = l.usize(move || format!("manager.server[{s}].domains.len"))?;
        for d in 0..domains {
            walk_domain(l, s, d)?;
        }
    }
    l.f64_slice(|| "manager.last_reclaim_secs".into())?;
    for map in ["vm_location", "migration_origin"] {
        let entries = l.usize(move || format!("manager.{map}.len"))?;
        for i in 0..entries {
            l.u64(move || format!("manager.{map}[{i}].vm"))?;
            l.u64(move || format!("manager.{map}[{i}].server_index"))?;
        }
    }
    let flights = l.usize(|| "manager.in_flight.len".into())?;
    for i in 0..flights {
        let p = move || format!("manager.in_flight[{i}]");
        l.u64(|| format!("{}.id", p()))?;
        l.u64(|| format!("{}.vm", p()))?;
        l.usize(|| format!("{}.source", p()))?;
        l.usize(|| format!("{}.dest", p()))?;
        l.f64(|| format!("{}.start_secs", p()))?;
        l.f64(|| format!("{}.finish_secs", p()))?;
        l.f64(|| format!("{}.deadline_secs", p()))?;
        l.f64(|| format!("{}.volume_mb", p()))?;
        l.bool(|| format!("{}.back", p()))?;
    }
    l.u64(|| "manager.next_migration_id".into())?;
    let ledgers = l.usize(|| "scheduler.ledgers.len".into())?;
    for i in 0..ledgers {
        l.f64_slice(move || format!("scheduler.ledger[{i}]"))?;
    }
    l.usize(|| "scheduler.booked".into())?;
    l.usize(|| "scheduler.rejected".into())?;
    l.f64(|| "scheduler.total_queue_wait_secs".into())?;
    for counter in [
        "admitted_free",
        "admitted_with_deflation",
        "admitted_with_preemption",
        "rejected",
        "preempted_vms",
    ] {
        l.usize(move || format!("manager.admission.{counter}"))?;
    }
    for counter in [
        "reclaim_events",
        "restore_events",
        "absorbed_by_deflation",
        "migrations",
        "migrations_back",
        "migration_aborts",
        "migration_rejections",
        "reclamation_victims",
    ] {
        l.usize(move || format!("manager.transient.{counter}"))?;
    }
    let dirty = l.usize(|| "placement_index.dirty_len".into())?;
    for i in 0..dirty {
        l.usize(move || format!("placement_index.dirty[{i}]"))?;
    }
    Ok(())
}

/// Mirror of `Domain::write_snapshot` (spec, mechanism, guest, cgroups,
/// history, parked flag, cache clock).
fn walk_domain(l: &mut Lockstep<'_>, s: usize, d: usize) -> Step<()> {
    let p = move || format!("manager.server[{s}].domain[{d}]");
    l.vm_spec(|| format!("{}.vm_spec", p()))?;
    l.u8(|| format!("{}.mechanism", p()))?;
    l.u32(|| format!("{}.guest.boot_vcpus", p()))?;
    l.u32(|| format!("{}.guest.online_vcpus", p()))?;
    l.f64(|| format!("{}.guest.boot_memory_mb", p()))?;
    l.f64(|| format!("{}.guest.plugged_memory_mb", p()))?;
    l.f64(|| format!("{}.guest.rss_mb", p()))?;
    l.f64(|| format!("{}.guest.page_cache_mb", p()))?;
    l.f64(|| format!("{}.guest.page_cache_target_mb", p()))?;
    l.f64(|| format!("{}.guest.cpu_busy_fraction", p()))?;
    l.resources(|| format!("{}.usages", p()))?;
    l.resources(|| format!("{}.limits", p()))?;
    l.f64_slice(|| format!("{}.cpu_util_history", p()))?;
    l.bool(|| format!("{}.parked", p()))?;
    l.f64(|| format!("{}.cache_advance_secs", p()))?;
    Ok(())
}

/// Mirror of `Autoscaler::write_snapshot`.
fn walk_autoscaler(l: &mut Lockstep<'_>) -> Step<()> {
    let apps = l.usize(|| "autoscaler.apps.len".into())?;
    for a in 0..apps {
        let p = move || format!("autoscaler.app[{a}]");
        let members = l.usize(|| format!("{}.members.len", p()))?;
        for m in 0..members {
            l.u64(|| format!("{}.member[{m}].vm", p()))?;
            l.bool(|| format!("{}.member[{m}].parked", p()))?;
            l.f64(|| format!("{}.member[{m}].serving_from", p()))?;
        }
        l.u64(|| format!("{}.launched", p()))?;
        l.f64(|| format!("{}.cooldown_until", p()))?;
    }
    for counter in [
        "scale_out_actions",
        "scale_in_actions",
        "launches",
        "launch_failures",
        "reinflations",
        "parks",
        "retirements",
        "replicas_lost",
        "ticks",
        "overload_ticks",
    ] {
        l.usize(move || format!("autoscaler.stats.{counter}"))?;
    }
    l.f64(|| "autoscaler.stats.setpoint_error_sum".into())?;
    l.f64_slice(|| "autoscaler.stats.latency.response_times".into())?;
    l.usize(|| "autoscaler.stats.latency.dropped".into())?;
    l.usize(|| "autoscaler.stats.final_active".into())?;
    l.usize(|| "autoscaler.stats.final_parked".into())?;
    Ok(())
}

/// Mirror of the per-VM record block of `serialize_state`.
fn walk_vm_record(l: &mut Lockstep<'_>, i: usize) -> Step<()> {
    let p = move || format!("record[{i}]");
    l.bool(|| format!("{}.running", p()))?;
    let outcome = l.u8(|| format!("{}.outcome", p()))?;
    match outcome {
        // Completed / Rejected carry no payload
        0 | 1 => {}
        // Preempted / Evicted carry their timestamp
        2 | 3 => {
            l.f64(|| format!("{}.outcome.at_secs", p()))?;
        }
        other => {
            return Err(Stop::Corrupt(CheckpointError::Corrupt(format!(
                "unknown VmOutcome discriminant {other} in record[{i}]"
            ))))
        }
    }
    let history = l.usize(|| format!("{}.allocation_history.len", p()))?;
    for j in 0..history {
        l.f64(|| format!("{}.allocation_history[{j}].time_secs", p()))?;
        l.f64(|| format!("{}.allocation_history[{j}].fraction", p()))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::{ClusterConfig, ReclamationMode};
    use crate::spec::{
        paper_server_capacity, servers_for_transient_overcommitment, workload_from_azure,
        MinAllocationRule,
    };
    use deflate_core::policy::TransferPolicy;
    use deflate_hypervisor::migration::MigrationCostModel;
    use deflate_traces::azure::{AzureTraceConfig, AzureTraceGenerator};
    use deflate_transient::signal::{CapacityProfile, CapacitySchedule, TransientConfig};

    const HORIZON_SECS: f64 = 4.0 * 3600.0;

    fn scenario_workload() -> Vec<WorkloadVm> {
        let traces = AzureTraceGenerator::generate(&AzureTraceConfig {
            num_vms: 60,
            duration_hours: 4.0,
            seed: 11,
            ..Default::default()
        });
        workload_from_azure(&traces, MinAllocationRule::None)
    }

    /// The migration-only baseline on spot-market transient servers with a
    /// one-link bandwidth budget and a tight deadline: every reclamation
    /// queues a burst of transfers behind contended slots, so the transfer
    /// policy genuinely reorders the run.
    fn scenario_sim(
        servers: usize,
        schedule: CapacitySchedule,
        policy: TransferPolicy,
    ) -> ClusterSimulation {
        ClusterSimulation::new(
            ClusterConfig::paper_default(servers),
            ReclamationMode::MigrationOnly,
        )
        .with_capacity_schedule(schedule)
        .with_migrate_back(true)
        .with_migration_cost(
            MigrationCostModel::lan_default()
                .with_budget_mbps(1250.0)
                .with_deadline_secs(30.0),
        )
        .with_transfer_policy(policy)
    }

    fn scenario_cluster(workload: &[WorkloadVm]) -> (usize, CapacitySchedule) {
        let profile = CapacityProfile::spot_market_default();
        let servers = servers_for_transient_overcommitment(
            workload,
            paper_server_capacity(),
            0.0,
            profile.mean_availability(),
        );
        let schedule = CapacitySchedule::generate(&TransientConfig {
            num_servers: servers,
            transient_fraction: 1.0,
            duration_secs: HORIZON_SECS,
            profile,
            seed: 11,
        });
        (servers, schedule)
    }

    #[test]
    fn identical_configs_report_no_divergence() {
        let workload = scenario_workload();
        let (servers, schedule) = scenario_cluster(&workload);
        let a = scenario_sim(servers, schedule.clone(), TransferPolicy::fifo());
        let b = scenario_sim(servers, schedule, TransferPolicy::fifo())
            .with_shards(deflate_core::shard::ShardConfig::with_shards(4));
        let report = bisect_divergence(&a, &b, &workload, HORIZON_SECS, 60.0).unwrap();
        assert!(report.is_none(), "shard count must not diverge: {report:?}");
    }

    // The checked-in localization scenario: two runs differing only in
    // transfer policy (an injected single-knob divergence). The bisection
    // must pin the first divergent window exactly — verified against
    // from-scratch checkpoints at both window bounds.
    #[test]
    fn injected_transfer_policy_divergence_is_localized() {
        let workload = scenario_workload();
        let (servers, schedule) = scenario_cluster(&workload);
        let a = scenario_sim(servers, schedule.clone(), TransferPolicy::fifo());
        let b = scenario_sim(servers, schedule, TransferPolicy::smallest_first());
        let resolution = 60.0;
        let report = bisect_divergence(&a, &b, &workload, HORIZON_SECS, resolution)
            .unwrap()
            .expect("different transfer policies must diverge in this scenario");

        let (lo, hi) = report.window_secs;
        assert!(
            hi - lo <= resolution,
            "window wider than resolution: {report}"
        );
        assert!(!report.diff.field.is_empty());
        // Ground truth by independent from-scratch checkpoints: identical
        // at the window's lower bound, divergent at its upper bound.
        assert_eq!(
            first_divergent_field(&a.checkpoint(&workload, lo), &b.checkpoint(&workload, lo))
                .unwrap(),
            None,
            "runs must still be bit-identical at the window's lower bound"
        );
        assert!(
            first_divergent_field(&a.checkpoint(&workload, hi), &b.checkpoint(&workload, hi))
                .unwrap()
                .is_some(),
            "runs must be divergent at the window's upper bound"
        );
    }

    // The field walk must describe every byte the engine serializes: a
    // single bit flipped anywhere in a snapshot yields a named field, and
    // untouched snapshots walk clean.
    #[test]
    fn snapshot_walk_consumes_every_byte() {
        let workload = scenario_workload();
        let (servers, schedule) = scenario_cluster(&workload);
        let sim = scenario_sim(servers, schedule, TransferPolicy::fifo());
        let snapshot = sim.checkpoint(&workload, HORIZON_SECS / 2.0);
        assert_eq!(first_divergent_field(&snapshot, &snapshot).unwrap(), None);

        // Flip the last byte: the walk must still reach and name a field
        // (the final byte belongs to the utilization block or the empty
        // trailing length), not fall off the layout.
        let mut mutated = snapshot.clone();
        *mutated.last_mut().unwrap() ^= 0x01;
        let diff = first_divergent_field(&snapshot, &mutated)
            .unwrap()
            .expect("a flipped bit must be named");
        assert!(
            diff.field.starts_with("utilization"),
            "last byte belongs to the utilization block, got {}",
            diff.field
        );
    }

    #[test]
    fn divergent_snapshot_lengths_name_the_short_side() {
        let workload = scenario_workload();
        let (servers, schedule) = scenario_cluster(&workload);
        let sim = scenario_sim(servers, schedule, TransferPolicy::fifo());
        let early = sim.checkpoint(&workload, 600.0);
        let late = sim.checkpoint(&workload, 1800.0);
        let diff = first_divergent_field(&early, &late)
            .unwrap()
            .expect("snapshots at different boundaries differ");
        // The very first field is the boundary time itself.
        assert_eq!(diff.field, "at_secs");
    }
}
