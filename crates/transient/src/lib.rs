//! # deflate-transient
//!
//! Provider-side **transient-capacity dynamics** for the `vmdeflate`
//! workspace.
//!
//! The paper's premise (§2, §6, §7.4) is that VMs run on *transient*
//! servers: the provider reclaims part of a server's capacity when
//! higher-priority demand arrives and restores it later, and deflation — not
//! preemption — should absorb those shocks. This crate supplies the two
//! pieces that premise needs and that are independent of the cluster
//! manager itself:
//!
//! * [`signal`] — seeded, trace-like **capacity signals**: per-server time
//!   series of reclamation/restitution change-points generated from
//!   square-wave, diurnal or bursty spot-market-style profiles, in the same
//!   spirit as the synthetic Azure/Alibaba workload generators in
//!   `deflate-traces`.
//! * [`events`] — the generalized **discrete-event engine**: typed
//!   simulation events ([`events::SimEvent`]: arrivals, departures,
//!   migration completions, capacity reclaim/restore, utilisation ticks)
//!   and a binary-heap [`events::EventQueue`] with fully deterministic
//!   ordering (timestamp, then event kind, then entity id).
//! * [`sharded`] — the **sharded engine** for million-VM traces: the
//!   global queue split into per-shard [`events::EventQueue`]s
//!   (capacity events routed by server, VM events by workload slot),
//!   heapified in parallel on `std::thread` workers and drained by a
//!   coordinator that merges shard heads under the exact same total
//!   order ([`events::event_cmp`]) — so any shard count pops the
//!   *identical* event sequence. `ShardConfig` (a `deflate-core` knob,
//!   default 1 = sequential) selects the shard count; the determinism
//!   contract is pinned by `tests/shard_parity.rs` and documented in
//!   `docs/PERFORMANCE.md`.
//! * [`pool`] — the **persistent worker pool** the engine's parallel
//!   sections share ([`pool::WorkerPool`]): heapify, utilisation
//!   sampling, usage snapshotting and the placement-ranking fan-out
//!   submit borrowed task batches to long-lived workers instead of
//!   respawning scoped threads per section.
//!
//! The cluster simulator (`deflate-cluster`) replays workloads through the
//! event engine and reacts to capacity events by deflating, migrating or —
//! only when both fail — killing resident VMs. Migrations are *not* free:
//! the cluster layer prices each transfer with the hypervisor crate's
//! migration cost model and schedules a [`SimEvent::MigrationComplete`]
//! event for the moment the page copy finishes (or hits the provider's
//! reclamation deadline, in which case the VM is evicted mid-transfer).
//!
//! # Event total order
//!
//! Events sharing a timestamp are delivered in a fixed kind order so runs
//! are reproducible regardless of insertion order:
//!
//! 1. `Departure` — frees capacity first;
//! 2. `MigrationComplete` — frees the source's share of an in-flight VM;
//! 3. `CapacityRestore` — more room before anyone asks for it;
//! 4. `CapacityReclaim` — simultaneous arrivals see the shrunk server;
//! 5. `Arrival`;
//! 6. `UtilizationTick` — metrics observe the settled state.
//!
//! Remaining ties break on the entity id (workload index, migration id or
//! server id), making the order total.
//!
//! # Example
//!
//! Deterministic delivery at equal timestamps:
//!
//! ```
//! use deflate_transient::events::{EventQueue, SimEvent};
//!
//! let mut queue = EventQueue::new();
//! queue.push(10.0, SimEvent::Arrival(0));
//! queue.push(10.0, SimEvent::Departure(1));
//! queue.push(10.0, SimEvent::MigrationComplete { migration: 3 });
//!
//! assert_eq!(queue.pop(), Some((10.0, SimEvent::Departure(1))));
//! assert_eq!(
//!     queue.pop(),
//!     Some((10.0, SimEvent::MigrationComplete { migration: 3 }))
//! );
//! assert_eq!(queue.pop(), Some((10.0, SimEvent::Arrival(0))));
//! ```
//!
//! And the same contract under the sharded engine — a two-shard queue,
//! built in parallel, delivers the bit-identical sequence:
//!
//! ```
//! use deflate_core::shard::ShardConfig;
//! use deflate_transient::events::SimEvent;
//! use deflate_transient::sharded::ShardedEventQueue;
//!
//! let events = vec![
//!     (10.0, SimEvent::Arrival(0)),
//!     (10.0, SimEvent::Departure(1)),
//!     (10.0, SimEvent::MigrationComplete { migration: 3 }),
//! ];
//! let mut queue = ShardedEventQueue::build(
//!     ShardConfig::with_shards(2),
//!     4, // servers
//!     2, // workload slots
//!     events,
//! );
//!
//! assert_eq!(queue.pop(), Some((10.0, SimEvent::Departure(1))));
//! assert_eq!(
//!     queue.pop(),
//!     Some((10.0, SimEvent::MigrationComplete { migration: 3 }))
//! );
//! assert_eq!(queue.pop(), Some((10.0, SimEvent::Arrival(0))));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod events;
pub mod pool;
pub mod sharded;
pub mod signal;

pub use events::{EventQueue, SimEvent};
pub use pool::WorkerPool;
pub use sharded::ShardedEventQueue;
pub use signal::{CapacityChange, CapacityProfile, CapacitySchedule, TransientConfig};

/// Commonly used items, for glob import in examples and downstream crates.
pub mod prelude {
    pub use crate::events::{EventQueue, SimEvent};
    pub use crate::pool::WorkerPool;
    pub use crate::sharded::ShardedEventQueue;
    pub use crate::signal::{CapacityChange, CapacityProfile, CapacitySchedule, TransientConfig};
}
