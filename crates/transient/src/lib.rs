//! # deflate-transient
//!
//! Provider-side **transient-capacity dynamics** for the `vmdeflate`
//! workspace.
//!
//! The paper's premise (§2, §6, §7.4) is that VMs run on *transient*
//! servers: the provider reclaims part of a server's capacity when
//! higher-priority demand arrives and restores it later, and deflation — not
//! preemption — should absorb those shocks. This crate supplies the two
//! pieces that premise needs and that are independent of the cluster
//! manager itself:
//!
//! * [`signal`] — seeded, trace-like **capacity signals**: per-server time
//!   series of reclamation/restitution change-points generated from
//!   square-wave, diurnal or bursty spot-market-style profiles, in the same
//!   spirit as the synthetic Azure/Alibaba workload generators in
//!   `deflate-traces`.
//! * [`events`] — the generalized **discrete-event engine**: typed
//!   simulation events ([`events::SimEvent`]: arrivals, departures, capacity
//!   reclaim/restore, utilisation ticks) and a binary-heap
//!   [`events::EventQueue`] with fully deterministic ordering (timestamp,
//!   then event kind, then entity id).
//!
//! The cluster simulator (`deflate-cluster`) replays workloads through the
//! event engine and reacts to capacity events by deflating, migrating or —
//! only when both fail — killing resident VMs.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod events;
pub mod signal;

pub use events::{EventQueue, SimEvent};
pub use signal::{CapacityChange, CapacityProfile, CapacitySchedule, TransientConfig};

/// Commonly used items, for glob import in examples and downstream crates.
pub mod prelude {
    pub use crate::events::{EventQueue, SimEvent};
    pub use crate::signal::{CapacityChange, CapacityProfile, CapacitySchedule, TransientConfig};
}
