//! Typed simulation events and the deterministic event queue.
//!
//! The first-generation cluster simulator kept an ad-hoc `Vec<(f64, u8,
//! Event)>` sorted once up front, which only knew VM arrivals and
//! departures and relied on `Vec` sort stability for tie-breaking. This
//! module generalises it: a binary-heap [`EventQueue`] over typed
//! [`SimEvent`]s with a *total*, fully deterministic order — timestamp
//! (via `f64::total_cmp`), then event kind, then entity id — so that runs
//! are reproducible regardless of insertion order, and new event kinds
//! (capacity reclamation/restitution, utilisation ticks) can be scheduled
//! dynamically while the simulation is running.

use deflate_core::checkpoint::{ByteReader, ByteWriter, CheckpointError, CheckpointResult};
use deflate_core::vm::ServerId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One typed simulation event.
///
/// `Arrival`/`Departure` carry the *index* of the VM in the workload slice
/// being replayed (not its [`VmId`](deflate_core::vm::VmId)) so the
/// simulator can address its per-VM bookkeeping arrays directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimEvent {
    /// A VM (index into the workload) departs.
    Departure(usize),
    /// An in-flight live migration finishes (or hits its abort deadline).
    /// Carries the migration id handed out by the cluster manager when the
    /// transfer started; the manager decides on delivery whether the
    /// transfer completed or must be aborted. Transfers queued behind a
    /// bandwidth budget need no separate wake event: the transfer
    /// scheduler folds the queueing delay into the start time, so this
    /// one event covers the whole booked transfer.
    MigrationComplete {
        /// Identifier of the in-flight migration.
        migration: u64,
    },
    /// The provider restores a server's capacity to the given fraction of
    /// its hardware capacity.
    CapacityRestore {
        /// Affected server.
        server: ServerId,
        /// Available-capacity fraction from now on.
        available_fraction: f64,
    },
    /// The provider reclaims a server's capacity down to the given fraction
    /// of its hardware capacity.
    CapacityReclaim {
        /// Affected server.
        server: ServerId,
        /// Available-capacity fraction from now on.
        available_fraction: f64,
    },
    /// A VM (index into the workload) arrives.
    Arrival(usize),
    /// The autoscaler executes a previously decided scale-out for one
    /// elastic application: reinflate parked replicas and/or launch new
    /// ones. Decisions are made at `UtilizationTick`s and actuated after
    /// the policy's actuation delay, so the event carries only the
    /// application id — the actuator recomputes the desired replica count
    /// from the (deterministic) demand signal at delivery time.
    ScaleOut {
        /// Elastic application being scaled.
        app: u32,
    },
    /// The autoscaler executes a previously decided scale-in for one
    /// elastic application: terminate replicas (launch-only policy) or
    /// deflate them into the parked state (deflation-aware policy).
    ScaleIn {
        /// Elastic application being scaled.
        app: u32,
    },
    /// Periodic sampling point for cluster-utilisation metrics.
    UtilizationTick,
}

impl SimEvent {
    /// Processing rank for events sharing a timestamp. Departures run first
    /// (they free capacity), then migration completions (they free the
    /// source server's share of an in-flight VM), then capacity
    /// restitutions (more room), then reclamations (so simultaneous
    /// arrivals see the reduced capacity), then arrivals, then autoscale
    /// actions (scale-outs before scale-ins, both after arrivals so the
    /// actuator sees the settled population), then metric ticks (which
    /// observe the settled state). The relative order of the pre-autoscale
    /// kinds is unchanged from before scale events existed, so runs that
    /// never schedule them — every `AutoscalePolicy::Disabled` run — are
    /// bit-identical to the engine that predates them.
    fn rank(&self) -> u8 {
        match self {
            SimEvent::Departure(_) => 0,
            SimEvent::MigrationComplete { .. } => 1,
            SimEvent::CapacityRestore { .. } => 2,
            SimEvent::CapacityReclaim { .. } => 3,
            SimEvent::Arrival(_) => 4,
            SimEvent::ScaleOut { .. } => 5,
            SimEvent::ScaleIn { .. } => 6,
            SimEvent::UtilizationTick => 7,
        }
    }

    /// Serialize the event for an engine checkpoint: the kind's rank as
    /// the discriminant, then the payload fields.
    pub fn write_snapshot(&self, w: &mut ByteWriter) {
        w.put_u8(self.rank());
        match self {
            SimEvent::Arrival(i) | SimEvent::Departure(i) => w.put_usize(*i),
            SimEvent::MigrationComplete { migration } => w.put_u64(*migration),
            SimEvent::CapacityRestore {
                server,
                available_fraction,
            }
            | SimEvent::CapacityReclaim {
                server,
                available_fraction,
            } => {
                w.put_u32(server.0);
                w.put_f64(*available_fraction);
            }
            SimEvent::ScaleOut { app } | SimEvent::ScaleIn { app } => w.put_u32(*app),
            SimEvent::UtilizationTick => {}
        }
    }

    /// Decode an event written by [`write_snapshot`](Self::write_snapshot).
    pub fn read_snapshot(r: &mut ByteReader<'_>) -> CheckpointResult<Self> {
        Ok(match r.get_u8()? {
            0 => SimEvent::Departure(r.get_usize()?),
            1 => SimEvent::MigrationComplete {
                migration: r.get_u64()?,
            },
            2 => SimEvent::CapacityRestore {
                server: ServerId(r.get_u32()?),
                available_fraction: r.get_f64()?,
            },
            3 => SimEvent::CapacityReclaim {
                server: ServerId(r.get_u32()?),
                available_fraction: r.get_f64()?,
            },
            4 => SimEvent::Arrival(r.get_usize()?),
            5 => SimEvent::ScaleOut { app: r.get_u32()? },
            6 => SimEvent::ScaleIn { app: r.get_u32()? },
            7 => SimEvent::UtilizationTick,
            other => {
                return Err(CheckpointError::Corrupt(format!(
                    "unknown SimEvent discriminant {other}"
                )))
            }
        })
    }

    /// Entity id used as the final tie-break among same-kind events at the
    /// same timestamp: the workload index for VM events, the server id for
    /// capacity events, the migration id for migration completions, the
    /// application id for autoscale actions.
    fn tie_id(&self) -> u64 {
        match self {
            SimEvent::Arrival(i) | SimEvent::Departure(i) => *i as u64,
            SimEvent::CapacityReclaim { server, .. } | SimEvent::CapacityRestore { server, .. } => {
                server.0 as u64
            }
            SimEvent::MigrationComplete { migration } => *migration,
            SimEvent::ScaleOut { app } | SimEvent::ScaleIn { app } => *app as u64,
            SimEvent::UtilizationTick => 0,
        }
    }
}

/// An event with its scheduled time.
#[derive(Debug, Clone, Copy)]
struct Scheduled {
    time: f64,
    event: SimEvent,
}

impl Scheduled {
    /// Total ordering key. The final component folds in the capacity
    /// fraction (as raw bits) so the order is total over *every* field:
    /// two `Scheduled` values compare `Equal` if and only if their keys are
    /// bit-identical (`PartialEq` below is defined from this same key),
    /// keeping `Ord` and `PartialEq` consistent and making pop order
    /// independent of push order even for contradictory duplicate events.
    fn key(&self) -> (f64, u8, u64, u64) {
        let payload_bits = match self.event {
            SimEvent::CapacityReclaim {
                available_fraction, ..
            }
            | SimEvent::CapacityRestore {
                available_fraction, ..
            } => available_fraction.to_bits(),
            _ => 0,
        };
        (
            self.time,
            self.event.rank(),
            self.event.tie_id(),
            payload_bits,
        )
    }
}

/// The queue's total order over `(time, event)` pairs, earliest first:
/// timestamp (`f64::total_cmp`), then event kind, then entity id, then the
/// raw bits of the capacity payload. This is the *global* delivery order
/// every engine — the single [`EventQueue`] and the sharded engine's
/// coordinator merge (see [`crate::sharded`]) — agrees on; exposing it is
/// what lets per-shard queues be merged without re-deriving the ordering.
pub fn event_cmp(a: (f64, SimEvent), b: (f64, SimEvent)) -> Ordering {
    let a = Scheduled {
        time: a.0,
        event: a.1,
    };
    let b = Scheduled {
        time: b.0,
        event: b.1,
    };
    // `Scheduled`'s own Ord is reversed for the max-heap; compare the raw
    // keys forward here.
    let (t1, r1, i1, p1) = a.key();
    let (t2, r2, i2, p2) = b.key();
    t1.total_cmp(&t2)
        .then(r1.cmp(&r2))
        .then(i1.cmp(&i2))
        .then(p1.cmp(&p2))
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        let (t1, r1, i1, p1) = self.key();
        let (t2, r2, i2, p2) = other.key();
        // Reversed: BinaryHeap is a max-heap, we want the earliest event on
        // top.
        t2.total_cmp(&t1)
            .then(r2.cmp(&r1))
            .then(i2.cmp(&i1))
            .then(p2.cmp(&p1))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic min-queue of timed simulation events.
///
/// Events at equal timestamps are delivered in a fixed kind order
/// (departures, then migration completions, capacity restitutions,
/// reclamations, arrivals, scale-outs, scale-ins, utilisation ticks) with
/// entity ids breaking remaining ties, so replaying the same schedule
/// always produces the same sequence regardless of the order events were
/// pushed in.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// An empty queue with space for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
        }
    }

    /// A queue holding `events`, heapified in one linear pass
    /// (`BinaryHeap::from`) instead of `n` sift-up pushes — the
    /// start-of-run bulk build the engine does once per shard. Pop order
    /// is identical to pushing the events individually: the ordering is
    /// total, so the drained sequence of a multiset is unique regardless
    /// of the heap's internal layout. Panics on non-finite timestamps,
    /// like [`push`](Self::push).
    pub fn from_events(events: Vec<(f64, SimEvent)>) -> Self {
        let scheduled: Vec<Scheduled> = events
            .into_iter()
            .map(|(time, event)| {
                assert!(time.is_finite(), "event scheduled at non-finite time");
                Scheduled { time, event }
            })
            .collect();
        EventQueue {
            heap: BinaryHeap::from(scheduled),
        }
    }

    /// Schedule an event. Non-finite timestamps are rejected with a panic —
    /// they would corrupt the queue order.
    pub fn push(&mut self, time: f64, event: SimEvent) {
        assert!(time.is_finite(), "event scheduled at non-finite time");
        self.heap.push(Scheduled { time, event });
    }

    /// Remove and return the earliest event as `(time, event)`.
    pub fn pop(&mut self) -> Option<(f64, SimEvent)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time)
    }

    /// The earliest pending event as `(time, event)`, without removing it.
    /// The sharded engine's coordinator compares shard heads through this.
    pub fn peek(&self) -> Option<(f64, SimEvent)> {
        self.heap.peek().map(|s| (s.time, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Every pending event in the queue's pop order, without draining it.
    /// `BinaryHeap::iter` yields an arbitrary layout-dependent order, so
    /// the collected events are sorted under [`event_cmp`] — the result is
    /// independent of how (and in what order) events were pushed, which is
    /// what makes checkpoint bytes reproducible.
    pub fn contents(&self) -> Vec<(f64, SimEvent)> {
        let mut events: Vec<(f64, SimEvent)> =
            self.heap.iter().map(|s| (s.time, s.event)).collect();
        events.sort_by(|a, b| event_cmp(*a, *b));
        events
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Owned heap bytes behind the queue: the backing buffer's allocated
    /// capacity × entry size. Deterministic — heap growth is a pure
    /// function of the push/pop sequence — and fed into the engine's
    /// `mem.event_queue` gauge (see `deflate-telemetry`'s `MemoryLedger`).
    pub fn accounted_bytes(&self) -> u64 {
        (self.heap.capacity() * std::mem::size_of::<Scheduled>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_kind_then_id() {
        let mut q = EventQueue::new();
        // Push deliberately shuffled.
        q.push(10.0, SimEvent::Arrival(5));
        q.push(5.0, SimEvent::UtilizationTick);
        q.push(5.0, SimEvent::Arrival(2));
        q.push(
            5.0,
            SimEvent::CapacityReclaim {
                server: ServerId(1),
                available_fraction: 0.5,
            },
        );
        q.push(5.0, SimEvent::Departure(9));
        q.push(
            5.0,
            SimEvent::CapacityRestore {
                server: ServerId(0),
                available_fraction: 1.0,
            },
        );
        q.push(5.0, SimEvent::Arrival(1));
        q.push(5.0, SimEvent::MigrationComplete { migration: 7 });
        q.push(5.0, SimEvent::ScaleIn { app: 0 });
        q.push(5.0, SimEvent::ScaleOut { app: 3 });
        let order: Vec<(f64, SimEvent)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            vec![
                (5.0, SimEvent::Departure(9)),
                (5.0, SimEvent::MigrationComplete { migration: 7 }),
                (
                    5.0,
                    SimEvent::CapacityRestore {
                        server: ServerId(0),
                        available_fraction: 1.0
                    }
                ),
                (
                    5.0,
                    SimEvent::CapacityReclaim {
                        server: ServerId(1),
                        available_fraction: 0.5
                    }
                ),
                (5.0, SimEvent::Arrival(1)),
                (5.0, SimEvent::Arrival(2)),
                (5.0, SimEvent::ScaleOut { app: 3 }),
                (5.0, SimEvent::ScaleIn { app: 0 }),
                (5.0, SimEvent::UtilizationTick),
                (10.0, SimEvent::Arrival(5)),
            ]
        );
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let events = [
            (3.0, SimEvent::Arrival(0)),
            (1.0, SimEvent::Departure(4)),
            (1.0, SimEvent::Arrival(4)),
            (2.0, SimEvent::UtilizationTick),
            (
                1.0,
                SimEvent::CapacityReclaim {
                    server: ServerId(3),
                    available_fraction: 0.25,
                },
            ),
        ];
        let drain = |order: &[usize]| -> Vec<(f64, SimEvent)> {
            let mut q = EventQueue::with_capacity(events.len());
            for &i in order {
                let (t, e) = events[i];
                q.push(t, e);
            }
            std::iter::from_fn(|| q.pop()).collect()
        };
        let forward = drain(&[0, 1, 2, 3, 4]);
        let backward = drain(&[4, 3, 2, 1, 0]);
        let shuffled = drain(&[2, 0, 4, 1, 3]);
        assert_eq!(forward, backward);
        assert_eq!(forward, shuffled);
        assert_eq!(forward[0].1, SimEvent::Departure(4));
    }

    #[test]
    fn contradictory_duplicates_pop_in_a_fixed_order() {
        // Two reclaims for the same server at the same instant with
        // different fractions are contradictory input, but the queue must
        // still order them identically regardless of push order.
        let a = SimEvent::CapacityReclaim {
            server: ServerId(2),
            available_fraction: 0.3,
        };
        let b = SimEvent::CapacityReclaim {
            server: ServerId(2),
            available_fraction: 0.7,
        };
        let drain = |first: SimEvent, second: SimEvent| {
            let mut q = EventQueue::new();
            q.push(50.0, first);
            q.push(50.0, second);
            [q.pop().unwrap().1, q.pop().unwrap().1]
        };
        assert_eq!(drain(a, b), drain(b, a));
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan_times() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, SimEvent::UtilizationTick);
    }

    #[test]
    fn bulk_build_pops_the_same_sequence_as_pushes() {
        let events = vec![
            (3.0, SimEvent::Arrival(0)),
            (1.0, SimEvent::Departure(4)),
            (1.0, SimEvent::Arrival(4)),
            (2.0, SimEvent::UtilizationTick),
            (1.0, SimEvent::MigrationComplete { migration: 2 }),
            (
                1.0,
                SimEvent::CapacityReclaim {
                    server: ServerId(3),
                    available_fraction: 0.25,
                },
            ),
        ];
        let mut pushed = EventQueue::with_capacity(events.len());
        for &(t, e) in &events {
            pushed.push(t, e);
        }
        let mut bulk = EventQueue::from_events(events);
        assert_eq!(bulk.len(), pushed.len());
        while let Some(expected) = pushed.pop() {
            assert_eq!(bulk.pop(), Some(expected));
        }
        assert!(bulk.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn bulk_build_rejects_nan_times() {
        let _ = EventQueue::from_events(vec![(f64::NAN, SimEvent::UtilizationTick)]);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(2.0, SimEvent::Arrival(0));
        q.push(1.0, SimEvent::Arrival(1));
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(1.0));
    }
}
