//! The sharded event engine: per-shard queues behind a deterministic
//! coordinator.
//!
//! A single binary-heap [`EventQueue`] is the simulator's clock, and at
//! million-VM trace sizes it becomes the bottleneck twice over: building
//! the heap is one giant `O(N log N)` pass on one core, and every event
//! kind shares one allocation-heavy structure. [`ShardedEventQueue`]
//! splits the queue into `S` per-shard [`EventQueue`]s:
//!
//! * **Routing** — every event is owned by exactly one shard, decided by
//!   a pure function of the event itself ([`ShardedEventQueue::route`]):
//!   capacity events go to the shard owning their server, VM
//!   arrivals/departures to the shard owning their workload slot,
//!   migration completions to the shard of their migration id, autoscale
//!   actions to the shard of their application id, and cluster-wide
//!   utilisation ticks to shard 0 (the coordinator's own shard). Routing
//!   affects only *which heap holds an event*, never the order it is
//!   delivered in.
//! * **Parallel construction** — [`ShardedEventQueue::build`] heapifies
//!   each shard's slice of the pre-scheduled events on its own
//!   `std::thread` worker, turning the start-of-run `O(N log N)` pass
//!   into `S` independent `O(N/S · log(N/S))` passes.
//! * **Coordinator merge** — [`ShardedEventQueue::pop`] compares the `S`
//!   shard heads under the exact total order of the single queue
//!   ([`event_cmp`]: time, then kind, then entity id, then payload bits)
//!   and pops the global minimum. Because the order is *total* and
//!   routing is a function of the ordering key's fields, the merged pop
//!   sequence is **identical** to the single queue's pop sequence — this
//!   is the determinism contract `tests/shard_parity.rs` pins and
//!   `docs/PERFORMANCE.md` documents.
//!
//! With one shard (the [`ShardConfig::sequential`] default) there is no
//! routing, no worker thread and a single heap: exactly the engine this
//! module replaced.

use crate::events::{event_cmp, EventQueue, SimEvent};
use crate::pool::{run_tasks, Task, WorkerPool};
use deflate_core::shard::ShardConfig;
use deflate_telemetry::{Phase, TelemetrySink};

/// A deterministic min-queue of timed simulation events, split into
/// per-shard heaps merged by a coordinator.
///
/// Drop-in replacement for [`EventQueue`]: `push`/`pop`/`len` behave
/// identically for every shard count, including pop *order*.
///
/// # Example
///
/// A four-shard queue delivers the same sequence as a sequential one:
///
/// ```
/// use deflate_core::shard::ShardConfig;
/// use deflate_transient::events::{EventQueue, SimEvent};
/// use deflate_transient::sharded::ShardedEventQueue;
///
/// let events = vec![
///     (9.0, SimEvent::Arrival(7)),
///     (3.0, SimEvent::Departure(1)),
///     (3.0, SimEvent::Arrival(2)),
///     (3.0, SimEvent::UtilizationTick),
///     (1.0, SimEvent::MigrationComplete { migration: 4 }),
/// ];
///
/// let mut sequential = EventQueue::new();
/// for &(t, e) in &events {
///     sequential.push(t, e);
/// }
/// let mut sharded = ShardedEventQueue::build(
///     ShardConfig::with_shards(4),
///     16, // servers
///     8,  // workload slots
///     events,
/// );
///
/// assert_eq!(sharded.len(), 5);
/// while let Some(expected) = sequential.pop() {
///     assert_eq!(sharded.pop(), Some(expected));
/// }
/// assert!(sharded.is_empty());
/// ```
#[derive(Debug)]
pub struct ShardedEventQueue {
    config: ShardConfig,
    num_servers: usize,
    num_slots: usize,
    shards: Vec<EventQueue>,
}

impl ShardedEventQueue {
    /// An empty sharded queue for a cluster of `num_servers` servers
    /// replaying `num_slots` workload slots. A zero shard count (possible
    /// via a `ShardConfig` struct literal) is normalised to one here, so
    /// every internal use of `config.shards` is safe.
    pub fn new(config: ShardConfig, num_servers: usize, num_slots: usize) -> Self {
        let config = ShardConfig::with_shards(config.shards);
        let shards = (0..config.shards).map(|_| EventQueue::new()).collect();
        ShardedEventQueue {
            config,
            num_servers,
            num_slots,
            shards,
        }
    }

    /// Build the queue from a pre-scheduled event list, heapifying each
    /// shard's share on its own `std::thread` worker (sequentially when
    /// the configuration has a single shard — no thread is spawned).
    pub fn build(
        config: ShardConfig,
        num_servers: usize,
        num_slots: usize,
        events: Vec<(f64, SimEvent)>,
    ) -> Self {
        Self::build_with_telemetry(
            config,
            num_servers,
            num_slots,
            events,
            &TelemetrySink::disabled(),
        )
    }

    /// [`build`](Self::build) under a telemetry sink: the whole build is
    /// a [`Phase::Heapify`] span, each worker's heapify is a per-shard
    /// span, and the queue publishes its routing balance (event count per
    /// shard) into the metrics registry. The sink only observes — the
    /// built queue is identical to [`build`](Self::build)'s.
    pub fn build_with_telemetry(
        config: ShardConfig,
        num_servers: usize,
        num_slots: usize,
        events: Vec<(f64, SimEvent)>,
        telemetry: &TelemetrySink,
    ) -> Self {
        Self::build_with_workers(config, num_servers, num_slots, events, telemetry, None)
    }

    /// [`build_with_telemetry`](Self::build_with_telemetry) with the
    /// parallel heapify submitted to a persistent [`WorkerPool`] instead
    /// of a throwaway one — the simulation loop shares one pool across
    /// every parallel section of a run. The built queue is identical
    /// either way.
    pub fn build_with_workers(
        config: ShardConfig,
        num_servers: usize,
        num_slots: usize,
        events: Vec<(f64, SimEvent)>,
        telemetry: &TelemetrySink,
        pool: Option<&WorkerPool>,
    ) -> Self {
        let _heapify = telemetry.span(Phase::Heapify);
        let mut queue = ShardedEventQueue::new(config, num_servers, num_slots);
        if !config.is_parallel() {
            queue.shards[0] = EventQueue::from_events(events);
            queue.publish_build_metrics(telemetry);
            return queue;
        }
        // Route first (cheap, sequential), then heapify each shard's
        // bucket in parallel — one linear `from_events` build per worker
        // rather than n sift-up pushes. Worker panics (only possible on
        // non-finite timestamps, which the single-queue path rejects
        // identically) propagate via the pool's batch join.
        let mut buckets: Vec<Vec<(f64, SimEvent)>> = vec![Vec::new(); config.shards];
        for (t, e) in events {
            buckets[queue.route(&e)].push((t, e));
        }
        let mut built: Vec<Option<EventQueue>> = (0..config.shards).map(|_| None).collect();
        let tasks: Vec<Task<'_>> = built
            .iter_mut()
            .zip(buckets)
            .enumerate()
            .map(|(shard, (slot, bucket))| {
                let worker_sink = telemetry.clone();
                Box::new(move || {
                    let _span = worker_sink.shard_span(shard, Phase::Heapify);
                    *slot = Some(EventQueue::from_events(bucket));
                }) as Task<'_>
            })
            .collect();
        run_tasks(pool, config.shards, tasks);
        queue.shards = built
            .into_iter()
            .map(|heap| heap.expect("shard heapify completed"))
            .collect();
        queue.publish_build_metrics(telemetry);
        queue
    }

    /// Publish the post-build routing balance: total scheduled events,
    /// shard count, and each shard's heap size.
    fn publish_build_metrics(&self, telemetry: &TelemetrySink) {
        if !telemetry.enabled() {
            return;
        }
        telemetry.gauge_set("queue.shards", self.config.shards as f64);
        telemetry.count("queue.events_scheduled", self.len() as u64);
        for (shard, len) in self.shard_lens().into_iter().enumerate() {
            telemetry.gauge_set(&format!("queue.shard.{shard}.initial_events"), len as f64);
        }
    }

    /// The shard owning an event: a pure function of the event's own
    /// fields, so the same event always lands in (and is popped from) the
    /// same heap.
    pub fn route(&self, event: &SimEvent) -> usize {
        match event {
            SimEvent::Arrival(i) | SimEvent::Departure(i) => {
                self.config.shard_of(*i, self.num_slots)
            }
            SimEvent::CapacityReclaim { server, .. } | SimEvent::CapacityRestore { server, .. } => {
                self.config.shard_of(server.0 as usize, self.num_servers)
            }
            // Migration ids are allocated in event-processing order and
            // have no home server spanning both endpoints; spread them
            // round-robin so no shard's heap collects every completion.
            SimEvent::MigrationComplete { migration } => (*migration as usize) % self.config.shards,
            // Elastic applications have no home server either (their
            // replicas spread across the cluster); spread their scale
            // actions round-robin by application id.
            SimEvent::ScaleOut { app } | SimEvent::ScaleIn { app } => {
                (*app as usize) % self.config.shards
            }
            // Cluster-wide events belong to the coordinator's own shard.
            SimEvent::UtilizationTick => 0,
        }
    }

    /// Schedule an event (same contract as [`EventQueue::push`]:
    /// non-finite timestamps panic).
    pub fn push(&mut self, time: f64, event: SimEvent) {
        let shard = self.route(&event);
        self.shards[shard].push(time, event);
    }

    /// Remove and return the globally earliest event: the minimum of the
    /// shard heads under the queue's total order.
    pub fn pop(&mut self) -> Option<(f64, SimEvent)> {
        let mut best: Option<(usize, (f64, SimEvent))> = None;
        for (k, shard) in self.shards.iter().enumerate() {
            let Some(head) = shard.peek() else { continue };
            let better = match &best {
                Some((_, current)) => event_cmp(head, *current) == std::cmp::Ordering::Less,
                None => true,
            };
            if better {
                best = Some((k, head));
            }
        }
        let (k, _) = best?;
        self.shards[k].pop()
    }

    /// The timestamp of the globally earliest pending event.
    pub fn peek_time(&self) -> Option<f64> {
        self.shards
            .iter()
            .filter_map(|s| s.peek_time())
            .min_by(f64::total_cmp)
    }

    /// Total number of pending events across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// True when no shard has pending events.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// The shard configuration this queue runs under.
    pub fn config(&self) -> ShardConfig {
        self.config
    }

    /// Pending-event count of each shard, in shard order — the
    /// load-balance view `fig_scale` reports on.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.len()).collect()
    }

    /// Owned heap bytes across every shard's backing buffer (see
    /// [`EventQueue::accounted_bytes`]) plus the shard spine itself —
    /// the `mem.event_queue` contribution of the whole engine clock.
    pub fn accounted_bytes(&self) -> u64 {
        deflate_telemetry::vec_capacity_bytes(&self.shards)
            + self.shards.iter().map(|s| s.accounted_bytes()).sum::<u64>()
    }

    /// Every pending event across all shards, in the queue's global pop
    /// order. Because the order is total and routing never affects it,
    /// the result — and therefore the checkpoint bytes derived from it —
    /// is identical for every shard count.
    pub fn contents(&self) -> Vec<(f64, SimEvent)> {
        let mut events: Vec<(f64, SimEvent)> =
            self.shards.iter().flat_map(|s| s.contents()).collect();
        events.sort_by(|a, b| event_cmp(*a, *b));
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deflate_core::vm::ServerId;

    /// A mixed event soup exercising every routing arm.
    fn soup(n: usize) -> Vec<(f64, SimEvent)> {
        let mut events = Vec::new();
        for i in 0..n {
            // Deliberately colliding timestamps to stress the tie-break.
            let t = (i % 7) as f64;
            events.push((t, SimEvent::Arrival(i)));
            events.push((t + 0.5, SimEvent::Departure(i)));
            events.push((
                t,
                SimEvent::CapacityReclaim {
                    server: ServerId((i % 13) as u32),
                    available_fraction: 0.25 + (i % 3) as f64 * 0.25,
                },
            ));
            events.push((
                t + 1.0,
                SimEvent::CapacityRestore {
                    server: ServerId((i % 13) as u32),
                    available_fraction: 1.0,
                },
            ));
            events.push((
                t,
                SimEvent::MigrationComplete {
                    migration: i as u64,
                },
            ));
            events.push((
                t + 0.5,
                SimEvent::ScaleOut {
                    app: (i % 3) as u32,
                },
            ));
            events.push((
                t + 0.5,
                SimEvent::ScaleIn {
                    app: (i % 4) as u32,
                },
            ));
            if i % 5 == 0 {
                events.push((t, SimEvent::UtilizationTick));
            }
        }
        events
    }

    fn drain_sequential(events: &[(f64, SimEvent)]) -> Vec<(f64, SimEvent)> {
        let mut q = EventQueue::with_capacity(events.len());
        for &(t, e) in events {
            q.push(t, e);
        }
        std::iter::from_fn(move || q.pop()).collect()
    }

    #[test]
    fn every_shard_count_pops_the_sequential_order() {
        let events = soup(40);
        let expected = drain_sequential(&events);
        for shards in [1, 2, 3, 4, 8, 16] {
            let mut q =
                ShardedEventQueue::build(ShardConfig::with_shards(shards), 13, 40, events.clone());
            assert_eq!(q.len(), events.len());
            let got: Vec<(f64, SimEvent)> = std::iter::from_fn(|| q.pop()).collect();
            assert_eq!(got, expected, "{shards} shards diverged");
            assert!(q.is_empty());
        }
    }

    #[test]
    fn dynamic_pushes_interleave_identically() {
        // Push half up front, pop a few, push the rest mid-drain — the
        // simulator does exactly this with MigrationComplete events.
        let events = soup(20);
        let (first, second) = events.split_at(events.len() / 2);
        let reference = {
            let mut q = EventQueue::new();
            for &(t, e) in first {
                q.push(t, e);
            }
            let mut out = Vec::new();
            for _ in 0..5 {
                out.push(q.pop().unwrap());
            }
            for &(t, e) in second {
                q.push(t + 2.0, e);
            }
            out.extend(std::iter::from_fn(|| q.pop()));
            out
        };
        for shards in [2, 4] {
            let mut q = ShardedEventQueue::new(ShardConfig::with_shards(shards), 13, 20);
            for &(t, e) in first {
                q.push(t, e);
            }
            let mut out = Vec::new();
            for _ in 0..5 {
                out.push(q.pop().unwrap());
            }
            for &(t, e) in second {
                q.push(t + 2.0, e);
            }
            out.extend(std::iter::from_fn(|| q.pop()));
            assert_eq!(out, reference, "{shards} shards diverged mid-drain");
        }
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let q = ShardedEventQueue::new(ShardConfig::with_shards(4), 13, 40);
        for &(_, e) in &soup(40) {
            let shard = q.route(&e);
            assert!(shard < 4);
            assert_eq!(q.route(&e), shard);
        }
        assert_eq!(q.route(&SimEvent::UtilizationTick), 0);
    }

    #[test]
    fn shard_lens_sum_to_len() {
        let events = soup(30);
        let total = events.len();
        let q = ShardedEventQueue::build(ShardConfig::with_shards(3), 13, 30, events);
        assert_eq!(q.shard_lens().iter().sum::<usize>(), total);
        assert_eq!(q.shard_lens().len(), 3);
        assert_eq!(q.config().shards, 3);
        // Parallel build actually spread events across shards.
        assert!(q.shard_lens().iter().filter(|&&l| l > 0).count() > 1);
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = ShardedEventQueue::build(ShardConfig::with_shards(2), 13, 10, soup(10));
        while let Some(t) = q.peek_time() {
            let (popped, _) = q.pop().unwrap();
            assert_eq!(popped, t);
        }
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn telemetry_build_is_identical_and_publishes_balance() {
        use deflate_telemetry::{TelemetrySink, TelemetrySpec};
        let events = soup(25);
        let expected = drain_sequential(&events);
        let sink = TelemetrySink::in_memory(&TelemetrySpec::profiling());
        let mut q = ShardedEventQueue::build_with_telemetry(
            ShardConfig::with_shards(3),
            13,
            25,
            events.clone(),
            &sink,
        );
        let total = q.len() as u64;
        let got: Vec<(f64, SimEvent)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(got, expected, "telemetry build changed pop order");
        let report = sink.finish().unwrap();
        assert_eq!(report.metrics.counter("queue.events_scheduled"), total);
        assert_eq!(report.metrics.gauge("queue.shards"), Some(3.0));
        // heapify appears both as a coordinator phase and per-shard rows
        assert!(report
            .phases
            .phases
            .iter()
            .any(|row| row.phase == deflate_telemetry::Phase::Heapify));
        assert_eq!(report.phases.shards.len(), 3);
    }

    #[test]
    fn contents_are_pop_order_and_shard_count_independent() {
        let events = soup(20);
        let expected = drain_sequential(&events);
        for shards in [1, 2, 4] {
            let q =
                ShardedEventQueue::build(ShardConfig::with_shards(shards), 13, 20, events.clone());
            assert_eq!(q.contents(), expected, "{shards}-shard contents diverged");
            assert_eq!(q.len(), events.len(), "contents must not drain");
        }
    }

    #[test]
    fn events_snapshot_round_trip() {
        use deflate_core::checkpoint::{ByteReader, ByteWriter};
        let events = soup(10);
        let mut w = ByteWriter::new();
        for &(_, e) in &events {
            e.write_snapshot(&mut w);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        for &(_, e) in &events {
            assert_eq!(SimEvent::read_snapshot(&mut r).unwrap(), e);
        }
        r.finish().unwrap();
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan_times_like_the_single_queue() {
        let mut q = ShardedEventQueue::new(ShardConfig::with_shards(2), 4, 4);
        q.push(f64::NAN, SimEvent::UtilizationTick);
    }
}
