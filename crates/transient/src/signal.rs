//! Seeded capacity-signal generators.
//!
//! A **capacity signal** is a per-server time series of *available-capacity
//! fractions*: `1.0` means the server's full hardware capacity is usable,
//! `0.4` means the provider has reclaimed 60 % of it for higher-priority
//! (e.g. on-demand) customers. The generators below produce the three shapes
//! the paper's transient-server discussion motivates:
//!
//! * **square wave** — periodic, predictable reclamation (maintenance-window
//!   style): capacity drops to a fixed fraction for a fixed share of every
//!   period;
//! * **diurnal** — smooth day/night harvesting: available capacity follows a
//!   sinusoid between 1.0 and a trough, discretised into hourly steps;
//! * **spot market** — bursty, memoryless reclamation: outages arrive with
//!   exponential gaps, last an exponential duration and reclaim a uniformly
//!   drawn fraction — the shape of real spot/preemptible revocation traces.
//!
//! Generation is fully deterministic from [`TransientConfig::seed`], in the
//! same spirit as the synthetic Azure/Alibaba generators in
//! `deflate-traces`.

use deflate_core::vm::ServerId;
use deflate_traces::dist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Shape of the provider-side capacity signal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CapacityProfile {
    /// Periodic reclamation: every `period_secs`, capacity drops to
    /// `keep_fraction` for `duty * period_secs` seconds. Per-server phase is
    /// randomised so the whole cluster does not deflate in lock-step.
    SquareWave {
        /// Length of one reclaim/restore cycle, seconds.
        period_secs: f64,
        /// Available-capacity fraction while reclaimed (`0.0..1.0`).
        keep_fraction: f64,
        /// Fraction of each period spent reclaimed (`0.0..1.0`).
        duty: f64,
    },
    /// Sinusoidal day/night harvesting between full capacity and
    /// `trough_fraction`, discretised into `steps_per_period` change-points.
    Diurnal {
        /// Length of one day, seconds.
        period_secs: f64,
        /// Available fraction at the deepest point of the trough.
        trough_fraction: f64,
        /// Number of discrete capacity steps per period (e.g. 24 = hourly).
        steps_per_period: usize,
    },
    /// Memoryless spot-market revocations: outage gaps and durations are
    /// exponential, the reclaimed amount uniform.
    SpotMarket {
        /// Mean seconds between the end of one outage and the next.
        mean_gap_secs: f64,
        /// Mean outage duration, seconds.
        mean_outage_secs: f64,
        /// Available fraction during an outage is drawn uniformly from
        /// `[keep_lo, keep_hi)`.
        keep_lo: f64,
        /// Upper bound of the uniform keep-fraction draw.
        keep_hi: f64,
    },
}

impl CapacityProfile {
    /// Short name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            CapacityProfile::SquareWave { .. } => "square-wave",
            CapacityProfile::Diurnal { .. } => "diurnal",
            CapacityProfile::SpotMarket { .. } => "spot-market",
        }
    }

    /// A representative default of each shape, for experiments: 4-hour
    /// square wave keeping 50 % for a quarter of the period.
    pub fn square_wave_default() -> Self {
        CapacityProfile::SquareWave {
            period_secs: 4.0 * 3600.0,
            keep_fraction: 0.5,
            duty: 0.25,
        }
    }

    /// Default diurnal shape: 24-hour day dipping to 60 %, hourly steps.
    pub fn diurnal_default() -> Self {
        CapacityProfile::Diurnal {
            period_secs: 24.0 * 3600.0,
            trough_fraction: 0.6,
            steps_per_period: 24,
        }
    }

    /// Default spot-market shape: outages every ~3 h lasting ~30 min,
    /// keeping 30–70 % of capacity.
    pub fn spot_market_default() -> Self {
        CapacityProfile::SpotMarket {
            mean_gap_secs: 3.0 * 3600.0,
            mean_outage_secs: 1800.0,
            keep_lo: 0.3,
            keep_hi: 0.7,
        }
    }

    /// The time-average available-capacity fraction this profile converges
    /// to, used for capacity-aware cluster sizing.
    pub fn mean_availability(&self) -> f64 {
        match *self {
            CapacityProfile::SquareWave {
                keep_fraction,
                duty,
                ..
            } => 1.0 - duty.clamp(0.0, 1.0) * (1.0 - keep_fraction.clamp(0.0, 1.0)),
            CapacityProfile::Diurnal {
                trough_fraction, ..
            } => 0.5 * (1.0 + trough_fraction.clamp(0.0, 1.0)),
            CapacityProfile::SpotMarket {
                mean_gap_secs,
                mean_outage_secs,
                keep_lo,
                keep_hi,
            } => {
                let outage_share =
                    mean_outage_secs.max(0.0) / (mean_gap_secs + mean_outage_secs).max(1e-9);
                let mean_keep = 0.5 * (keep_lo + keep_hi);
                1.0 - outage_share * (1.0 - mean_keep.clamp(0.0, 1.0))
            }
        }
    }
}

/// Configuration of a transient-capacity schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransientConfig {
    /// Number of servers in the cluster.
    pub num_servers: usize,
    /// Fraction of servers that are transient (subject to the signal); the
    /// rest keep full capacity for the whole run.
    pub transient_fraction: f64,
    /// Length of the schedule, seconds.
    pub duration_secs: f64,
    /// Signal shape.
    pub profile: CapacityProfile,
    /// RNG seed; equal seeds produce identical schedules.
    pub seed: u64,
}

impl Default for TransientConfig {
    fn default() -> Self {
        TransientConfig {
            num_servers: 16,
            transient_fraction: 1.0,
            duration_secs: 24.0 * 3600.0,
            profile: CapacityProfile::square_wave_default(),
            seed: 0xDEF1A7E,
        }
    }
}

/// One change-point of a server's available capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacityChange {
    /// Simulation time of the change, seconds.
    pub time_secs: f64,
    /// Affected server.
    pub server: ServerId,
    /// Available-capacity fraction from this instant on (`0.0..=1.0`).
    pub available_fraction: f64,
    /// True when this change lowers the fraction (a reclamation); false for
    /// a restitution.
    pub is_reclaim: bool,
}

/// A time-sorted sequence of per-server capacity change-points.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CapacitySchedule {
    changes: Vec<CapacityChange>,
}

impl CapacitySchedule {
    /// A schedule with no capacity dynamics (every server static).
    pub fn empty() -> Self {
        CapacitySchedule::default()
    }

    /// Generate a schedule from a configuration. Change-points are sorted by
    /// time (ties broken by server id) and per-server fractions always
    /// alternate direction, so replaying the schedule in order keeps every
    /// server's state consistent.
    pub fn generate(config: &TransientConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let transient_servers = ((config.num_servers as f64 * config.transient_fraction).round()
            as usize)
            .min(config.num_servers);
        let mut changes = Vec::new();
        for server in 0..transient_servers {
            let id = ServerId(server as u32);
            match config.profile {
                CapacityProfile::SquareWave {
                    period_secs,
                    keep_fraction,
                    duty,
                } => {
                    let period = period_secs.max(1.0);
                    let keep = keep_fraction.clamp(0.0, 1.0);
                    // duty <= 0 or keep >= 1 means the profile never takes
                    // anything away: emit no events at all rather than
                    // degenerate zero-length (or full-period) dips.
                    if duty <= 0.0 || keep >= 1.0 {
                        continue;
                    }
                    let down = (duty.clamp(0.0, 1.0) * period).max(1.0);
                    if down >= period {
                        continue;
                    }
                    let phase = rng.gen_range(0.0..period);
                    let mut t = phase;
                    while t < config.duration_secs {
                        changes.push(CapacityChange {
                            time_secs: t,
                            server: id,
                            available_fraction: keep,
                            is_reclaim: true,
                        });
                        let up = (t + down).min(config.duration_secs);
                        if up < config.duration_secs {
                            changes.push(CapacityChange {
                                time_secs: up,
                                server: id,
                                available_fraction: 1.0,
                                is_reclaim: false,
                            });
                        }
                        t += period;
                    }
                }
                CapacityProfile::Diurnal {
                    period_secs,
                    trough_fraction,
                    steps_per_period,
                } => {
                    let period = period_secs.max(1.0);
                    let steps = steps_per_period.max(2);
                    let trough = trough_fraction.clamp(0.0, 1.0);
                    if trough >= 1.0 {
                        continue;
                    }
                    let phase = rng.gen_range(0.0..period);
                    let step_len = period / steps as f64;
                    let mut prev = 1.0;
                    let mut k = 1u64;
                    loop {
                        let t = k as f64 * step_len;
                        if t >= config.duration_secs {
                            break;
                        }
                        // Availability follows 1 - depth·(1 - cos)/2 with a
                        // per-server phase offset.
                        let angle = std::f64::consts::TAU * ((t + phase) / period).fract();
                        let fraction = 1.0 - (1.0 - trough) * 0.5 * (1.0 - angle.cos());
                        if (fraction - prev).abs() > 1e-3 {
                            changes.push(CapacityChange {
                                time_secs: t,
                                server: id,
                                available_fraction: fraction,
                                is_reclaim: fraction < prev,
                            });
                            prev = fraction;
                        }
                        k += 1;
                    }
                }
                CapacityProfile::SpotMarket {
                    mean_gap_secs,
                    mean_outage_secs,
                    keep_lo,
                    keep_hi,
                } => {
                    let gap_rate = 1.0 / mean_gap_secs.max(1.0);
                    let outage_rate = 1.0 / mean_outage_secs.max(1.0);
                    let (lo, hi) = (
                        keep_lo.clamp(0.0, 1.0),
                        keep_hi.clamp(0.0, 1.0).max(keep_lo.clamp(0.0, 1.0) + 1e-9),
                    );
                    let mut t = dist::exponential(&mut rng, gap_rate);
                    while t < config.duration_secs {
                        let keep = rng.gen_range(lo..hi);
                        changes.push(CapacityChange {
                            time_secs: t,
                            server: id,
                            available_fraction: keep,
                            is_reclaim: true,
                        });
                        let outage = dist::exponential(&mut rng, outage_rate);
                        let up = t + outage;
                        if up < config.duration_secs {
                            changes.push(CapacityChange {
                                time_secs: up,
                                server: id,
                                available_fraction: 1.0,
                                is_reclaim: false,
                            });
                        }
                        t = up + dist::exponential(&mut rng, gap_rate);
                    }
                }
            }
        }
        changes.sort_by(|a, b| {
            a.time_secs
                .total_cmp(&b.time_secs)
                .then(a.server.0.cmp(&b.server.0))
        });
        CapacitySchedule { changes }
    }

    /// The change-points in time order.
    pub fn changes(&self) -> &[CapacityChange] {
        &self.changes
    }

    /// Number of change-points.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// True when the schedule contains no change-points.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Number of reclamation change-points.
    pub fn reclaim_count(&self) -> usize {
        self.changes.iter().filter(|c| c.is_reclaim).count()
    }

    /// The lowest available fraction any server ever drops to (1.0 for an
    /// empty schedule).
    pub fn min_fraction(&self) -> f64 {
        self.changes
            .iter()
            .map(|c| c.available_fraction)
            .fold(1.0, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn config(profile: CapacityProfile) -> TransientConfig {
        TransientConfig {
            num_servers: 8,
            transient_fraction: 1.0,
            duration_secs: 48.0 * 3600.0,
            profile,
            seed: 7,
        }
    }

    fn check_alternation(schedule: &CapacitySchedule) {
        let mut fraction: HashMap<u32, f64> = HashMap::new();
        for c in schedule.changes() {
            let prev = fraction.entry(c.server.0).or_insert(1.0);
            assert!(
                (c.available_fraction < *prev) == c.is_reclaim,
                "change at {} marked is_reclaim={} but fraction {} -> {}",
                c.time_secs,
                c.is_reclaim,
                prev,
                c.available_fraction
            );
            *prev = c.available_fraction;
        }
    }

    #[test]
    fn square_wave_alternates_and_is_deterministic() {
        let cfg = config(CapacityProfile::square_wave_default());
        let a = CapacitySchedule::generate(&cfg);
        let b = CapacitySchedule::generate(&cfg);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.reclaim_count() > 0);
        assert!(a.reclaim_count() >= a.len() / 2 - 8);
        check_alternation(&a);
        // ~12 cycles over 48 h with a 4 h period, per server.
        assert!(a.reclaim_count() >= 8 * 10);
        assert!((a.min_fraction() - 0.5).abs() < 1e-9);
        // Sorted by time.
        for w in a.changes().windows(2) {
            assert!(w[0].time_secs <= w[1].time_secs);
        }
    }

    #[test]
    fn diurnal_stays_between_trough_and_full() {
        let schedule = CapacitySchedule::generate(&config(CapacityProfile::diurnal_default()));
        assert!(!schedule.is_empty());
        check_alternation(&schedule);
        for c in schedule.changes() {
            assert!(c.available_fraction >= 0.6 - 1e-9);
            assert!(c.available_fraction <= 1.0 + 1e-9);
        }
        assert!(schedule.min_fraction() < 0.65);
    }

    #[test]
    fn spot_market_outages_are_bounded_and_alternate() {
        let schedule = CapacitySchedule::generate(&config(CapacityProfile::spot_market_default()));
        assert!(!schedule.is_empty());
        check_alternation(&schedule);
        for c in schedule.changes() {
            if c.is_reclaim {
                assert!((0.3..0.7).contains(&c.available_fraction));
            } else {
                assert_eq!(c.available_fraction, 1.0);
            }
        }
    }

    #[test]
    fn degenerate_square_waves_emit_no_events() {
        // duty 0 (never reclaims) and keep 1.0 (reclaims nothing) are both
        // static profiles: no change-points at all.
        for profile in [
            CapacityProfile::SquareWave {
                period_secs: 4.0 * 3600.0,
                keep_fraction: 0.5,
                duty: 0.0,
            },
            CapacityProfile::SquareWave {
                period_secs: 4.0 * 3600.0,
                keep_fraction: 1.0,
                duty: 0.5,
            },
        ] {
            assert!(
                CapacitySchedule::generate(&config(profile)).is_empty(),
                "{profile:?} should be static"
            );
        }
    }

    #[test]
    fn transient_fraction_limits_affected_servers() {
        let mut cfg = config(CapacityProfile::square_wave_default());
        cfg.transient_fraction = 0.5;
        let schedule = CapacitySchedule::generate(&cfg);
        let max_server = schedule.changes().iter().map(|c| c.server.0).max().unwrap();
        assert!(max_server < 4, "server {max_server} should be static");
        cfg.transient_fraction = 0.0;
        assert!(CapacitySchedule::generate(&cfg).is_empty());
    }

    #[test]
    fn mean_availability_matches_shapes() {
        assert!((CapacityProfile::square_wave_default().mean_availability() - 0.875).abs() < 1e-9);
        assert!((CapacityProfile::diurnal_default().mean_availability() - 0.8).abs() < 1e-9);
        let spot = CapacityProfile::spot_market_default().mean_availability();
        assert!(spot > 0.9 && spot < 1.0, "spot availability {spot}");
    }
}
