//! A persistent worker pool for the engine's parallel sections.
//!
//! The sharded engine fans several kinds of embarrassingly-parallel work
//! out to worker threads: heapifying the per-shard event queues, applying
//! trace-utilisation batches, reading per-server usage at ticks, and the
//! placement-ranking fan-out. Historically each section spawned fresh
//! `std::thread::scope` workers and joined them — a respawn per section,
//! thousands of times per run. [`WorkerPool`] keeps the threads alive for
//! the whole run instead: sections submit borrowed closures, the pool
//! round-robins them over its persistent workers, and
//! [`run`](WorkerPool::run) blocks until every task completed.
//!
//! The pool is purely an execution substrate — it imposes no ordering of
//! its own, so every determinism argument that held for scoped threads
//! (disjoint `&mut` slices, sequential folds in server order) carries
//! over unchanged. A task panic is re-raised on the submitting thread
//! after the section's remaining tasks finish, mirroring the join-then-
//! propagate behaviour of `std::thread::scope`.

use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc::{self, Sender};
use std::thread::JoinHandle;

/// A borrowed task: may capture references to the submitting stack frame,
/// which [`WorkerPool::run`] keeps alive until the task has completed.
pub type Task<'scope> = Box<dyn FnOnce() + Send + 'scope>;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Persistent worker threads the engine's parallel sections share.
///
/// See the [module docs](self) for the execution model. Dropping the
/// pool closes the job channels and joins every worker.
#[derive(Debug)]
pub struct WorkerPool {
    senders: Vec<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn a pool of `threads` persistent workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for i in 0..threads {
            let (tx, rx) = mpsc::channel::<Job>();
            let handle = std::thread::Builder::new()
                .name(format!("deflate-worker-{i}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
                .expect("spawn pool worker");
            senders.push(tx);
            handles.push(handle);
        }
        WorkerPool { senders, handles }
    }

    /// Number of worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.senders.len()
    }

    /// Execute every task on the pool's workers (round-robin over threads,
    /// one queue per worker) and block until all of them finished. Tasks
    /// may borrow from the caller's stack: the borrow is sound because
    /// this method does not return until every task has run and been
    /// dropped. If any task panicked, the first payload is re-raised here
    /// after the whole batch completed.
    pub fn run<'scope>(&self, tasks: Vec<Task<'scope>>) {
        if tasks.is_empty() {
            return;
        }
        let (done_tx, done_rx) = mpsc::channel::<std::thread::Result<()>>();
        let submitted = tasks.len();
        for (i, task) in tasks.into_iter().enumerate() {
            // SAFETY: the task (and everything it borrows) outlives its
            // execution because the loop below blocks until `submitted`
            // completion messages arrived, and a worker sends its message
            // only after the task ran (or unwound) and was consumed.
            let task: Job = unsafe { std::mem::transmute::<Task<'scope>, Task<'static>>(task) };
            let done = done_tx.clone();
            let job: Job = Box::new(move || {
                let result = panic::catch_unwind(AssertUnwindSafe(task));
                let _ = done.send(result.map(|_| ()));
            });
            self.senders[i % self.senders.len()]
                .send(job)
                .expect("pool worker alive");
        }
        drop(done_tx);
        let mut panic_payload = None;
        for _ in 0..submitted {
            match done_rx.recv().expect("pool task completion") {
                Ok(()) => {}
                Err(payload) => panic_payload = Some(payload),
            }
        }
        if let Some(payload) = panic_payload {
            panic::resume_unwind(payload);
        }
    }

    /// Fan `jobs` indexed computations out over the pool and collect their
    /// results **in index order** (task `k`'s result is element `k`, so
    /// downstream sequential folds see the same order a sequential loop
    /// would). Blocks until every computation finished.
    pub fn map<T, F>(&self, jobs: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let mut slots: Vec<Option<T>> = (0..jobs).map(|_| None).collect();
        let f = &f;
        let tasks: Vec<Task<'_>> = slots
            .iter_mut()
            .enumerate()
            .map(|(k, slot)| Box::new(move || *slot = Some(f(k))) as Task<'_>)
            .collect();
        self.run(tasks);
        slots
            .into_iter()
            .map(|slot| slot.expect("pool task completed"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Run a batch of borrowed tasks on `pool` when one is attached, or on a
/// throwaway pool of `threads` workers otherwise — the per-section spawn
/// the persistent pool replaces, kept as the fallback for callers driving
/// the parallel paths without a simulation-owned pool.
pub fn run_tasks<'scope>(pool: Option<&WorkerPool>, threads: usize, tasks: Vec<Task<'scope>>) {
    match pool {
        Some(pool) => pool.run(tasks),
        None => WorkerPool::new(threads).run(tasks),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_borrowed_tasks_to_completion() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.threads(), 3);
        let mut values = vec![0usize; 8];
        let tasks: Vec<Task<'_>> = values
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| Box::new(move || *slot = i * i) as Task<'_>)
            .collect();
        pool.run(tasks);
        assert_eq!(values, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn pool_is_reusable_across_sections() {
        let pool = WorkerPool::new(2);
        let counter = AtomicUsize::new(0);
        for _ in 0..10 {
            let tasks: Vec<Task<'_>> = (0..4)
                .map(|_| {
                    Box::new(|| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    }) as Task<'_>
                })
                .collect();
            pool.run(tasks);
        }
        assert_eq!(counter.load(Ordering::SeqCst), 40);
    }

    #[test]
    fn map_returns_results_in_index_order() {
        let pool = WorkerPool::new(4);
        let base = 100usize;
        let out = pool.map(7, |k| base + k);
        assert_eq!(out, vec![100, 101, 102, 103, 104, 105, 106]);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.map(3, |k| k), vec![0, 1, 2]);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let pool = WorkerPool::new(2);
        pool.run(Vec::new());
    }

    #[test]
    fn task_panic_propagates_after_the_batch() {
        let pool = WorkerPool::new(2);
        let finished = AtomicUsize::new(0);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Task<'_>> = (0..4)
                .map(|i| {
                    let finished = &finished;
                    Box::new(move || {
                        if i == 1 {
                            panic!("task failure");
                        }
                        finished.fetch_add(1, Ordering::SeqCst);
                    }) as Task<'_>
                })
                .collect();
            pool.run(tasks);
        }));
        assert!(result.is_err());
        assert_eq!(finished.load(Ordering::SeqCst), 3);
        // The pool survives a panicked batch.
        assert_eq!(pool.map(2, |k| k), vec![0, 1]);
    }

    #[test]
    fn run_tasks_falls_back_to_a_throwaway_pool() {
        let mut hits = [false; 3];
        let tasks: Vec<Task<'_>> = hits
            .iter_mut()
            .map(|slot| Box::new(move || *slot = true) as Task<'_>)
            .collect();
        run_tasks(None, 2, tasks);
        assert!(hits.iter().all(|&h| h));
    }
}
