//! Minimal JSON value model and recursive-descent parser.
//!
//! The offline workspace has no `serde_json`, but the telemetry sinks
//! emit JSON (JSONL event logs, Chrome `trace_event` arrays) and the
//! test suite must be able to deserialize what they write. This module
//! provides just enough of a deserializer for that round-trip: a
//! [`Value`] tree, [`parse`], and string escaping for emitters.
//!
//! Numbers are held as `f64` (like `JSON.parse`); object keys keep
//! deterministic iteration order via `BTreeMap`.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, as a double.
    Number(f64),
    /// A string (escapes resolved).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, keys in sorted order.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object map, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Member lookup: `value.get("key")` on objects, `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|map| map.get(key))
    }
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input where parsing stopped.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters after document"));
    }
    Ok(value)
}

/// Escape `s` for inclusion inside a JSON string literal (no quotes
/// added). Handles quotes, backslashes and control characters.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// [`escape_into`] returning a fresh quoted string literal.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), ParseError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", expected as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{literal}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by our emitters;
                            // map lone surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Number(42.0));
        assert_eq!(parse("-1.5e3").unwrap(), Value::Number(-1500.0));
        assert_eq!(
            parse("\"hi\\n\\\"there\\\"\"").unwrap(),
            Value::String("hi\n\"there\"".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a": [1, 2, {"b": null}], "c": "d"}"#).unwrap();
        assert_eq!(doc.get("c").and_then(Value::as_str), Some("d"));
        let items = doc.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[2].get("b"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn quote_round_trips() {
        for s in [
            "plain",
            "with \"quotes\"",
            "tab\there",
            "nl\nthere",
            "\u{1}ctl",
        ] {
            let quoted = quote(s);
            assert_eq!(parse(&quoted).unwrap(), Value::String(s.to_string()));
        }
    }
}
