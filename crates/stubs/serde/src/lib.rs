//! Marker-trait stand-in for serde.
//!
//! See `crates/stubs/README.md`: the workspace uses `Serialize` /
//! `Deserialize` derives purely as decoration, so the traits are empty
//! markers and the derives (re-exported from the `serde_derive` stub)
//! expand to nothing. The derive macro and the trait share each name, the
//! same arrangement the real serde crate uses.
//!
//! The [`json`] module is the one piece with behaviour: a minimal JSON
//! value model and parser (standing in for `serde_json`) that the
//! telemetry sinks' well-formedness tests deserialize emitted traces
//! with.

pub mod json;

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
