//! Minimal, API-compatible stand-in for the parts of the `rand` crate this
//! workspace uses: `Rng::{gen, gen_range, gen_bool}`,
//! `SeedableRng::seed_from_u64` and `rngs::StdRng`.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — deterministic,
//! fast and statistically sound for simulation purposes, but **not**
//! bit-compatible with the real `StdRng` (ChaCha12). All experiment seeds in
//! this repository were chosen against this generator.

use std::ops::Range;

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction of reproducible generators from integer seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Sample a value from the standard distribution of this type.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types that `Rng::gen_range` can sample uniformly from a half-open range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Sample uniformly from `[low, high)`. Panics when `low >= high`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
        assert!(low < high, "gen_range called with empty range");
        let u = f64::from_rng(rng);
        low + u * (high - low)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range called with empty range");
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift bounded sampling; the tiny modulo bias of a
                // 64-bit word over simulator-sized spans is irrelevant here.
                let word = rng.next_u64() as u128;
                low + ((word * span) >> 64) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling interface, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the type's standard distribution (`f64` in
    /// `[0, 1)`, uniform `u64`, fair `bool`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Sample uniformly from a half-open range.
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_samples_are_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3.0..7.0);
            assert!((3.0..7.0).contains(&x));
            let k = rng.gen_range(2u32..9);
            assert!((2..9).contains(&k));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.05)).count();
        assert!((300..700).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
