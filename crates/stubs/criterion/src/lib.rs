//! Tiny stand-in for the parts of criterion this workspace's benches use:
//! `criterion_group!` / `criterion_main!`, `Criterion::{bench_function,
//! benchmark_group}`, `BenchmarkGroup::{sample_size, bench_function,
//! bench_with_input, finish}`, `BenchmarkId::new` and `Bencher::iter`.
//!
//! Each benchmark body runs a fixed small number of iterations and the mean
//! wall-clock time is printed — coarse comparisons only, no statistics.

use std::fmt::Display;
use std::time::Instant;

/// Number of timed iterations per benchmark. Kept tiny so `cargo bench`
/// finishes quickly; bump via `CRITERION_STUB_ITERS` if finer numbers are
/// wanted.
fn iterations() -> u32 {
    std::env::var("CRITERION_STUB_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

/// Identifier of one parameterised benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter label.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to benchmark closures; `iter` runs and times the body.
pub struct Bencher {
    label: String,
}

impl Bencher {
    /// Run the benchmark body a fixed number of iterations and print the
    /// mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let iters = iterations();
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(body());
        }
        let mean = start.elapsed().as_secs_f64() / iters as f64;
        println!("bench {:<60} {:>12.3} ms/iter", self.label, mean * 1000.0);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the stub ignores sample sizes.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut b = Bencher {
            label: format!("{}/{}", self.name, id),
        };
        f(&mut b);
    }

    /// Run one parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher {
            label: format!("{}/{}", self.name, id),
        };
        f(&mut b, input);
    }

    /// No-op; kept for API compatibility.
    pub fn finish(self) {}
}

/// Entry point handed to benchmark functions by `criterion_group!`.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut b = Bencher {
            label: id.to_string(),
        };
        f(&mut b);
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run_bodies() {
        let mut c = Criterion;
        let mut runs = 0;
        c.bench_function("solo", |b| b.iter(|| runs += 1));
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("in-group", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("param", 3), &3, |b, &x| {
            b.iter(|| runs += x)
        });
        group.finish();
        assert!(runs > 0);
    }
}
