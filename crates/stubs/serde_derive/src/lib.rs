//! No-op replacements for serde's derive macros.
//!
//! The workspace decorates its data types with `#[derive(Serialize,
//! Deserialize)]` but never actually serializes anything, so these derives
//! simply expand to nothing. The matching marker traits live in the `serde`
//! stub crate.

use proc_macro::TokenStream;

/// Expands to nothing; satisfies `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; satisfies `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
