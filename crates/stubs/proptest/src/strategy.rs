//! Value-generation strategies: ranges, tuples, and `prop_map`.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};
use std::ops::Range;

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking — `generate`
/// directly produces a value from the RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<W, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> W,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, W> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> W,
{
    type Value = W;

    fn generate(&self, rng: &mut StdRng) -> W {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T: SampleUniform + Copy> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_map_compose() {
        let mut rng = StdRng::seed_from_u64(3);
        let strat = (0.0f64..1.0, 1u32..5).prop_map(|(x, k)| x * k as f64);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((0.0..5.0).contains(&v));
        }
        let vecs = crate::collection::vec(0.0f64..1.0, 2..6);
        for _ in 0..50 {
            let v = vecs.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }
}
