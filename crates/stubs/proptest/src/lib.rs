//! Mini property-testing framework, API-compatible with the subset of
//! `proptest` this workspace uses: the `proptest!` macro, range / tuple /
//! `prop_map` strategies, `prop::collection::vec`, `prop_assert!` /
//! `prop_assert_eq!`, `ProptestConfig::with_cases` and `TestCaseError`.
//!
//! Cases are generated from a deterministic per-test seed (a hash of the
//! test's name), so failures are reproducible across runs. There is no
//! shrinking: a failing case reports its index and message only.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

pub use strategy::Strategy;

/// Error raised by `prop_assert!` / `prop_assert_eq!` inside a property.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Create a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-`proptest!` configuration. Only the number of cases is honoured.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-test RNG: the seed is an FNV-1a hash of the test name.
pub fn test_rng(test_name: &str) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing `Vec`s of values from an element strategy, with a
    /// length drawn uniformly from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Build a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.start >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.start..self.size.end)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, TestCaseError};

    /// Alias letting `prop::collection::vec(..)` resolve, as with the real
    /// proptest prelude.
    pub use crate as prop;
}

/// Assert a condition inside a property, returning a [`TestCaseError`] on
/// failure (with an optional formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property, returning a [`TestCaseError`] on
/// failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...)` item becomes
/// a `#[test]` that draws `cases` random inputs and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name), case + 1, config.cases, err
                        );
                    }
                }
            }
        )*
    };
}
