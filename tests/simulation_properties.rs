//! Property-based tests on the simulation substrates: the processor-sharing
//! queue, the guest-OS hotplug model and the hypervisor domain mechanisms.

use proptest::prelude::*;
use vmdeflate::appsim::queueing::PsQueue;
use vmdeflate::core::resources::{ResourceKind, ResourceVector};
use vmdeflate::core::vm::{VmClass, VmId, VmSpec};
use vmdeflate::hypervisor::domain::{DeflationMechanism, Domain};
use vmdeflate::hypervisor::guest::{GuestOs, MEMORY_BLOCK_MB};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Work conservation and causality of the PS queue: every request
    /// eventually completes, departures never precede arrivals, and no
    /// request finishes faster than running alone at full capacity.
    #[test]
    fn ps_queue_conservation(
        capacity in 0.5f64..16.0,
        arrivals in prop::collection::vec((0.0f64..100.0, 0.001f64..2.0), 1..60),
    ) {
        let mut sorted = arrivals.clone();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut queue = PsQueue::new(capacity);
        let mut completions = Vec::new();
        for (i, &(t, demand)) in sorted.iter().enumerate() {
            completions.extend(queue.arrive(t, i as u64, demand));
        }
        let (done, unfinished) = queue.drain(1e12);
        completions.extend(done);
        prop_assert!(unfinished.is_empty());
        prop_assert_eq!(completions.len(), sorted.len());
        for c in &completions {
            prop_assert!(c.departure >= c.arrival);
            let lower_bound = c.demand / capacity;
            prop_assert!(
                c.response_time() >= lower_bound - 1e-9,
                "response {} below solo service time {}",
                c.response_time(),
                lower_bound
            );
        }
        // Departures are reported in order.
        for w in completions.windows(2) {
            prop_assert!(w[0].departure <= w[1].departure + 1e-9);
        }
    }

    /// Deflating a PS queue mid-run never makes any request finish earlier.
    #[test]
    fn ps_queue_deflation_never_speeds_up_requests(
        demands in prop::collection::vec(0.01f64..1.0, 1..20),
        deflate_at in 0.1f64..5.0,
        factor in 0.1f64..1.0,
    ) {
        let run = |deflated: bool| {
            let mut queue = PsQueue::new(4.0);
            let mut all = Vec::new();
            for (i, &d) in demands.iter().enumerate() {
                all.extend(queue.arrive(i as f64 * 0.05, i as u64, d));
            }
            if deflated {
                all.extend(queue.set_capacity(deflate_at, 4.0 * factor));
            }
            let (done, _) = queue.drain(1e12);
            all.extend(done);
            let mut by_id: Vec<f64> = vec![0.0; demands.len()];
            for c in all {
                by_id[c.id as usize] = c.response_time();
            }
            by_id
        };
        let baseline = run(false);
        let deflated = run(true);
        for (b, d) in baseline.iter().zip(deflated.iter()) {
            prop_assert!(*d >= *b - 1e-9, "deflation sped a request up: {b} -> {d}");
        }
    }

    /// Guest-OS hotplug invariants: vCPUs stay within [1, boot], memory stays
    /// within [block, boot], is block-aligned and never drops below the RSS
    /// threshold.
    #[test]
    fn guest_hotplug_invariants(
        vcpus in 1u32..64,
        memory_blocks in 8u32..256,
        rss_frac in 0.0f64..1.0,
        busy in 0.0f64..1.0,
        cpu_target in 0u32..80,
        mem_target in 0.0f64..40_000.0,
    ) {
        let boot_mem = memory_blocks as f64 * MEMORY_BLOCK_MB;
        let mut guest = GuestOs::boot(vcpus, boot_mem);
        guest.report_usage(rss_frac * boot_mem, 0.1 * boot_mem, busy);
        guest.set_online_vcpus(cpu_target);
        prop_assert!(guest.online_vcpus() >= 1);
        prop_assert!(guest.online_vcpus() <= guest.boot_vcpus());
        guest.set_plugged_memory(mem_target);
        let plugged = guest.plugged_memory_mb();
        prop_assert!(plugged <= boot_mem + 1e-9);
        prop_assert!(plugged >= MEMORY_BLOCK_MB - 1e-9);
        prop_assert!((plugged / MEMORY_BLOCK_MB).fract().abs() < 1e-9);
        prop_assert!(plugged >= guest.rss_mb() - 1e-9);
    }

    /// Domain mechanisms: the effective allocation always stays within the
    /// spec bounds, transparent deflation hits fractional targets exactly,
    /// and hybrid reaches the same effective allocation as transparent.
    #[test]
    fn domain_deflation_bounds(
        cores in 1.0f64..64.0,
        mem_gib in 1.0f64..128.0,
        target_frac in 0.0f64..1.2,
        usage_frac in 0.0f64..1.0,
    ) {
        let max = ResourceVector::new(cores * 1000.0, mem_gib * 1024.0, 500.0, 2000.0);
        let spec = VmSpec::deflatable(VmId(1), VmClass::Interactive, max);
        let target = max * target_frac;
        let usage = max * usage_frac;
        for mechanism in [
            DeflationMechanism::Transparent,
            DeflationMechanism::Explicit,
            DeflationMechanism::Hybrid,
        ] {
            let mut domain = Domain::launch_with(spec.clone(), mechanism);
            domain.report_guest_usage(usage, 0.0);
            domain.deflate_to(target);
            let eff = domain.effective_allocation();
            prop_assert!(eff.is_non_negative());
            prop_assert!(eff.fits_within(&max), "{mechanism:?}: {eff} exceeds {max}");
            for kind in ResourceKind::ALL {
                prop_assert!((0.0..=1.0).contains(&domain.deflation_fraction(kind)));
            }
            prop_assert!(domain.memory_pressure_overhead() >= 1.0);
        }
        // Transparent and hybrid reach the clamped target exactly on disk/net.
        let clamped = target.clamp(&ResourceVector::ZERO, &max);
        let mut transparent = Domain::launch_with(spec.clone(), DeflationMechanism::Transparent);
        transparent.report_guest_usage(usage, 0.0);
        transparent.deflate_to(target);
        let eff = transparent.effective_allocation();
        for kind in ResourceKind::ALL {
            prop_assert!((eff[kind] - clamped[kind]).abs() < 1e-6);
        }
    }
}
