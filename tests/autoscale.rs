//! Integration tests for the deflation-aware autoscaling subsystem:
//!
//! * **Disabled golden** — `AutoscalePolicy::Disabled` runs are
//!   bit-identical to runs of the simulator that never heard of
//!   autoscaling (the pre-subsystem behaviour every other golden test
//!   pins transitively, since `Disabled` is the default).
//! * **Conservation** — the autoscaler never creates or destroys capacity
//!   outside the `ClusterManager`'s accounting: every replica it ever
//!   launched is an admission attempt in the manager's counters, and ends
//!   the run either still in the pool, retired by a scale-in, or evicted
//!   by a reclamation.
//! * **Cache regrowth** — with the time-based regrowth model enabled,
//!   repeated squeezes move more bytes than the historical
//!   report-only refill; disabled, behaviour is bit-identical.

use deflate_bench::autoscale_exp::{run_autoscale, AutoscaleVariant};
use deflate_bench::scale::Scale;
use deflate_bench::transient_exp::{
    default_migration_cost, run_transient_scheduled, transient_workload, TransientMode,
};
use proptest::prelude::*;
use std::sync::Arc;
use vmdeflate::autoscale::{AutoscalePolicy, DemandCurve, ElasticApp};
use vmdeflate::cluster::manager::{ClusterConfig, PlacementKind, ReclamationMode};
use vmdeflate::cluster::sim::ClusterSimulation;
use vmdeflate::core::placement::PartitionScheme;
use vmdeflate::core::policy::{ProportionalDeflation, TransferPolicy};
use vmdeflate::core::resources::ResourceVector;
use vmdeflate::core::vm::Priority;
use vmdeflate::hypervisor::domain::{CacheRegrowthModel, DeflationMechanism};
use vmdeflate::transient::signal::{CapacityProfile, CapacitySchedule, TransientConfig};

/// `Disabled` autoscaling (with apps configured!) is bit-identical to a
/// run that never called `with_autoscale` — the golden gate on the PR 4
/// engine behaviour.
#[test]
fn disabled_autoscale_is_bit_identical_to_the_pre_subsystem_engine() {
    let scale = Scale::Quick;
    let workload = transient_workload(scale);
    let profile = CapacityProfile::spot_market_default();
    let plain = run_transient_scheduled(
        &workload,
        scale,
        TransientMode::Deflation,
        profile,
        default_migration_cost(),
        TransferPolicy::fifo(),
    );
    // Same configuration, but with an (inert) autoscale knob and apps.
    let capacity = vmdeflate::cluster::spec::paper_server_capacity();
    let servers = vmdeflate::cluster::spec::servers_for_transient_overcommitment(
        &workload,
        capacity,
        0.0,
        profile.mean_availability(),
    );
    let schedule = CapacitySchedule::generate(&TransientConfig {
        num_servers: servers,
        transient_fraction: 1.0,
        duration_secs: scale.cluster_trace_hours() * 3600.0,
        profile,
        seed: scale.seed(),
    });
    let config = ClusterConfig {
        num_servers: servers,
        server_capacity: capacity,
        placement: PlacementKind::CosineFitness,
        partitions: PartitionScheme::None,
        mechanism: DeflationMechanism::Transparent,
    };
    let disabled = ClusterSimulation::new(
        config,
        ReclamationMode::Deflation(Arc::new(ProportionalDeflation::default())),
    )
    .with_capacity_schedule(schedule)
    .with_migrate_back(true)
    .with_migration_cost(default_migration_cost())
    .with_transfer_policy(TransferPolicy::fifo())
    .with_autoscale(AutoscalePolicy::Disabled, vec![test_app(1_000_000)])
    .run(&workload);
    assert_eq!(plain, disabled);
    assert_eq!(disabled.autoscale, Default::default());
}

fn test_app(ids_from: u64) -> ElasticApp {
    ElasticApp {
        app: 0,
        replica_size: ResourceVector::cpu_mem(4000.0, 8192.0),
        replica_priority: Priority::new(0.5),
        replica_rate_rps: 100.0,
        replica_ids_from: ids_from,
        min_replicas: 2,
        max_replicas: 16,
        demand: DemandCurve::Diurnal {
            base_rps: 200.0,
            peak_rps: 900.0,
            period_secs: 4.0 * 3600.0,
            peak_at_secs: 0.0,
        },
        start_secs: 0.0,
    }
}

/// The experiment's own quick configurations conserve replicas and route
/// every launch through the manager's admission accounting.
#[test]
fn autoscaler_capacity_flows_through_manager_accounting() {
    let workload = transient_workload(Scale::Quick);
    for variant in AutoscaleVariant::ALL {
        let result = run_autoscale(
            &workload,
            Scale::Quick,
            variant,
            CapacityProfile::spot_market_default(),
        );
        let stats = &result.autoscale;
        assert!(stats.replicas_conserved(), "{}: {stats:?}", variant.name());
        // Every replica launch (successful or refused) is a manager
        // admission attempt on top of the workload's arrivals: the
        // autoscaler cannot conjure capacity past the admission path.
        assert_eq!(
            result.counters.attempts(),
            workload.len() + stats.launches + stats.launch_failures,
            "{}",
            variant.name()
        );
    }
}

/// Repeated deflate-then-migrate squeezes are free without the
/// cache-regrowth model and charged with it; a zero-rate model is
/// bit-identical to no model at all.
#[test]
fn cache_regrowth_charges_repeated_squeezes() {
    let scale = Scale::Quick;
    let workload = transient_workload(scale);
    let profile = CapacityProfile::spot_market_default();
    let policy = TransferPolicy::edf().with_deflate_then_migrate(true);
    let run = |model: Option<CacheRegrowthModel>| {
        let capacity = vmdeflate::cluster::spec::paper_server_capacity();
        let servers = vmdeflate::cluster::spec::servers_for_transient_overcommitment(
            &workload,
            capacity,
            0.0,
            profile.mean_availability(),
        );
        let schedule = CapacitySchedule::generate(&TransientConfig {
            num_servers: servers,
            transient_fraction: 1.0,
            duration_secs: scale.cluster_trace_hours() * 3600.0,
            profile,
            seed: scale.seed(),
        });
        let config = ClusterConfig {
            num_servers: servers,
            server_capacity: capacity,
            placement: PlacementKind::CosineFitness,
            partitions: PartitionScheme::None,
            mechanism: DeflationMechanism::Transparent,
        };
        let mut sim = ClusterSimulation::new(
            config,
            ReclamationMode::Deflation(Arc::new(ProportionalDeflation::default())),
        )
        .with_capacity_schedule(schedule)
        .with_migrate_back(true)
        .with_migration_cost(default_migration_cost())
        .with_transfer_policy(policy);
        if let Some(model) = model {
            sim = sim.with_cache_regrowth(model);
        }
        sim.run(&workload)
    };
    let baseline = run(None);
    let zero_rate = run(Some(CacheRegrowthModel::disabled()));
    assert_eq!(baseline, zero_rate, "a disabled model must change nothing");
    let regrowing = run(Some(CacheRegrowthModel::with_rate(50.0)));
    // Regrown caches ride along on later transfers: strictly more bytes
    // on the wire than the squeeze-once-free baseline.
    assert!(
        regrowing.total_migration_volume_mb() > baseline.total_migration_volume_mb(),
        "regrowth {} MiB must exceed baseline {} MiB",
        regrowing.total_migration_volume_mb(),
        baseline.total_migration_volume_mb()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Conservation under randomized configurations: arbitrary seeds,
    /// profiles and policies all keep the replica ledger balanced and the
    /// admission counters consistent — and repeated runs are
    /// bit-identical.
    #[test]
    fn conservation_holds_for_random_configurations(
        seed in 0u64..10_000,
        num_vms in 60usize..160,
        profile_pick in 0usize..3,
        deflation_aware in 0usize..2,
    ) {
        let traces = vmdeflate::traces::azure::AzureTraceGenerator::generate(
            &vmdeflate::traces::azure::AzureTraceConfig {
                num_vms,
                duration_hours: 8.0,
                seed,
                ..Default::default()
            },
        );
        let workload = vmdeflate::cluster::spec::workload_from_azure(
            &traces,
            vmdeflate::cluster::spec::MinAllocationRule::None,
        );
        let capacity = ResourceVector::cpu_mem(48_000.0, 131_072.0);
        let servers = vmdeflate::cluster::spec::min_cluster_size(&workload, capacity).max(2) + 2;
        let profile = match profile_pick {
            0 => CapacityProfile::square_wave_default(),
            1 => CapacityProfile::diurnal_default(),
            _ => CapacityProfile::spot_market_default(),
        };
        let schedule = CapacitySchedule::generate(&TransientConfig {
            num_servers: servers,
            transient_fraction: 1.0,
            duration_secs: 8.0 * 3600.0,
            profile,
            seed,
        });
        let config = ClusterConfig {
            num_servers: servers,
            server_capacity: capacity,
            placement: PlacementKind::CosineFitness,
            partitions: PartitionScheme::None,
            mechanism: DeflationMechanism::Transparent,
        };
        let policy = if deflation_aware == 1 {
            AutoscalePolicy::deflation_aware()
        } else {
            AutoscalePolicy::target_tracking()
        };
        let run = || ClusterSimulation::new(
            config.clone(),
            ReclamationMode::Deflation(Arc::new(ProportionalDeflation::default())),
        )
        .with_capacity_schedule(schedule.clone())
        .with_migrate_back(true)
        .with_migration_cost(default_migration_cost())
        .with_utilization_ticks(600.0)
        .with_autoscale(policy, vec![test_app(1_000_000)])
        .run(&workload);
        let result = run();
        let stats = &result.autoscale;
        prop_assert!(stats.replicas_conserved(), "{stats:?}");
        prop_assert_eq!(
            result.counters.attempts(),
            workload.len() + stats.launches + stats.launch_failures
        );
        prop_assert!(stats.ticks > 0);
        prop_assert_eq!(&result, &run());
    }
}
