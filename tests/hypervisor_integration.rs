//! Integration tests across `deflate-core` and `deflate-hypervisor`: the
//! per-server controller driving real (simulated) domains through the
//! policies, exactly the §6 admission flow.

use std::sync::Arc;
use vmdeflate::core::policy::{DeterministicDeflation, PriorityDeflation, ProportionalDeflation};
use vmdeflate::core::prelude::*;
use vmdeflate::hypervisor::prelude::*;

fn server() -> SimServer {
    SimServer::new(
        ServerId(0),
        ResourceVector::new(32_000.0, 65_536.0, 2_000.0, 10_000.0),
    )
}

fn web_vm(id: u64, cores: f64, priority: f64) -> VmSpec {
    VmSpec::deflatable(
        VmId(id),
        VmClass::Interactive,
        ResourceVector::new(cores * 1000.0, cores * 2048.0, 200.0, 1000.0),
    )
    .with_priority(Priority::new(priority))
}

#[test]
fn admission_under_pressure_respects_capacity_for_every_policy_and_mechanism() {
    let policies: Vec<Arc<dyn DeflationPolicy>> = vec![
        Arc::new(ProportionalDeflation::default()),
        Arc::new(ProportionalDeflation::by_size()),
        Arc::new(PriorityDeflation::weighted()),
        Arc::new(DeterministicDeflation::with_partial_last()),
    ];
    for policy in policies {
        for mechanism in [
            DeflationMechanism::Transparent,
            DeflationMechanism::Hybrid,
            DeflationMechanism::Explicit,
        ] {
            let mut controller = LocalController::new(server(), Arc::clone(&policy), mechanism);
            // Fill the server and then push three more VMs into it.
            for i in 0..7 {
                let outcome = controller
                    .try_admit(web_vm(i, 8.0, 0.2 + 0.1 * i as f64))
                    .unwrap();
                assert!(
                    !matches!(outcome, AdmissionOutcome::Rejected { .. }),
                    "policy {} mechanism {:?} rejected VM {i}",
                    controller.policy_name(),
                    mechanism
                );
            }
            // Physical capacity is never violated regardless of policy or
            // mechanism granularity.
            assert!(
                controller.server().check_capacity_invariant().is_ok(),
                "capacity violated for {} / {:?}",
                controller.policy_name(),
                mechanism
            );
            // The server is overcommitted: committed > capacity.
            assert!(controller.server().overcommitment_factor() > 1.5);
        }
    }
}

#[test]
fn hybrid_mechanism_uses_hotplug_and_multiplexing_together() {
    let policy = Arc::new(ProportionalDeflation::default());
    let mut controller = LocalController::new(server(), policy, DeflationMechanism::Hybrid);
    controller.try_admit(web_vm(1, 16.0, 0.5)).unwrap();
    controller.try_admit(web_vm(2, 16.0, 0.5)).unwrap();
    // Report realistic guest usage so the hotplug thresholds are meaningful.
    for domain in controller.server_mut().domains_mut() {
        let usage = domain.spec.max_allocation * 0.3;
        domain.report_guest_usage(usage, 2048.0);
    }
    // A third VM forces both residents to shrink by half.
    controller.try_admit(web_vm(3, 16.0, 0.5)).unwrap();
    for id in [1u64, 2] {
        let domain = controller.server().domain(VmId(id)).unwrap();
        let eff = domain.effective_allocation();
        assert!(eff.cpu() < 16_000.0, "vm-{id} was not deflated");
        // Hybrid deflation made part of the reduction visible to the guest.
        assert!(
            domain.guest.online_vcpus() < domain.guest.boot_vcpus(),
            "vm-{id} guest saw no hotplug"
        );
        // And the guest never lost memory below its resident set.
        assert!(domain.guest.plugged_memory_mb() >= domain.guest.rss_mb());
    }
}

#[test]
fn departure_reinflation_is_notified_and_complete() {
    let policy = Arc::new(PriorityDeflation::default());
    let mut controller = LocalController::new(server(), policy, DeflationMechanism::Transparent);
    for i in 0..6 {
        controller
            .try_admit(web_vm(i, 8.0, 0.3 + 0.1 * i as f64))
            .unwrap();
    }
    controller.take_notifications();
    // Remove half the VMs one by one; survivors must end fully reinflated.
    controller.on_departure(VmId(0)).unwrap();
    controller.on_departure(VmId(2)).unwrap();
    controller.on_departure(VmId(4)).unwrap();
    let notes = controller.take_notifications();
    assert!(
        notes.iter().any(|n| !n.is_deflation()),
        "no reinflation notifications"
    );
    for domain in controller.server().domains() {
        assert_eq!(
            domain.effective_allocation(),
            domain.spec.max_allocation,
            "{} not fully reinflated",
            domain.spec.id
        );
    }
}

#[test]
fn vector_planner_matches_controller_behaviour() {
    // Plan through the public VectorPlanner API and apply it manually: the
    // server must end up in the same state the controller produces.
    let policy = ProportionalDeflation::default();
    let mut manual = server();
    manual
        .create_domain(web_vm(1, 12.0, 0.5), DeflationMechanism::Transparent)
        .unwrap();
    manual
        .create_domain(web_vm(2, 12.0, 0.5), DeflationMechanism::Transparent)
        .unwrap();
    let demand = ResourceVector::cpu_mem(8_000.0, 16_384.0);
    let needed = demand.saturating_sub(&manual.free());
    let domains: Vec<_> = manual.domains().collect();
    let plan = VectorPlanner::plan(&policy, &domains, needed);
    assert!(plan.satisfied());
    let targets = plan.targets.clone();
    drop(domains);
    manual.apply_targets(&targets).unwrap();
    assert!(demand.fits_within(&manual.free()));

    let mut auto =
        LocalController::new(server(), Arc::new(policy), DeflationMechanism::Transparent);
    auto.try_admit(web_vm(1, 12.0, 0.5)).unwrap();
    auto.try_admit(web_vm(2, 12.0, 0.5)).unwrap();
    auto.try_admit(
        VmSpec::deflatable(VmId(3), VmClass::Interactive, demand).with_priority(Priority::new(0.5)),
    )
    .unwrap();
    for id in [1u64, 2] {
        let manual_alloc = manual.domain(VmId(id)).unwrap().effective_allocation();
        let auto_alloc = auto
            .server()
            .domain(VmId(id))
            .unwrap()
            .effective_allocation();
        assert!(
            (manual_alloc.cpu() - auto_alloc.cpu()).abs() < 1e-6,
            "vm-{id}: manual {manual_alloc} vs controller {auto_alloc}"
        );
    }
}
