//! Golden pins for the incremental placement index (PR 7).
//!
//! The cluster manager no longer rescans every server on each placement:
//! it keeps an **incremental score index** of cached [`ServerView`]s and
//! re-views only servers whose state changed since the last ranking pass.
//! That rewrite — and the opt-in parallel ranking fan-out behind
//! [`PlacementEngine`] — is purely a performance change. These tests pin
//! the contract: `PlacementEngine::default()` (the sequential index)
//! reproduces the pre-index `SimResult`s **byte for byte** on the
//! `fig_transient` and `fig_scheduler` quick configurations.
//!
//! The pinned values are FNV-1a hashes over the `Debug` rendering of every
//! deterministic `SimResult` field (per-VM records, counters, scheduler
//! stats, migration events, utilisation series, …; `Debug` for `f64` is
//! the shortest round-trip form, so the hash is bit-faithful). They were
//! captured from the PR 6 implementation — the full from-scratch rescan —
//! at quick scale. Any drift here means the index (or the engine knob's
//! default) changed a placement decision.
//!
//! To re-pin after an *intentional* semantic change:
//! `cargo test --release --test placement_golden -- --ignored --nocapture`

use deflate_bench::transient_exp::{
    default_migration_cost, profiles, run_transient_on, run_transient_scheduled,
    transient_workload, SchedulerVariant, TransientMode, SCHEDULER_SWEEP_MBPS,
};
use deflate_bench::Scale;
use vmdeflate::core::placement::PlacementEngine;
use vmdeflate::transient::signal::CapacityProfile;

mod common;
use common::sim_result_digest as digest;

/// The `fig_transient` quick grid: one digest per (profile, mode).
fn transient_digests() -> Vec<(String, u64)> {
    let workload = transient_workload(Scale::Quick);
    let mut out = Vec::new();
    for profile in profiles() {
        for mode in TransientMode::ALL {
            let result = run_transient_on(&workload, Scale::Quick, mode, profile);
            out.push((
                format!("{}/{}", profile.name(), mode.name()),
                digest(&result),
            ));
        }
    }
    out
}

/// The `fig_scheduler` quick grid: one digest per (budget, mode, variant).
fn scheduler_digests() -> Vec<(String, u64)> {
    let workload = transient_workload(Scale::Quick);
    let profile = CapacityProfile::spot_market_default();
    let mut out = Vec::new();
    for budget in SCHEDULER_SWEEP_MBPS {
        for mode in [TransientMode::Deflation, TransientMode::MigrationOnly] {
            for variant in SchedulerVariant::ALL {
                if !variant.applies_to(mode) {
                    continue;
                }
                let result = run_transient_scheduled(
                    &workload,
                    Scale::Quick,
                    mode,
                    profile,
                    variant.cost(budget),
                    variant.policy(),
                );
                out.push((
                    format!("{budget:.0}/{}/{}", mode.name(), variant.name()),
                    digest(&result),
                ));
            }
        }
    }
    out
}

/// Golden digests captured from the PR 6 full-rescan implementation on the
/// `fig_transient` quick grid.
const TRANSIENT_GOLDEN: [(&str, u64); 9] = [
    ("square-wave/deflation", 0x04871dba993ed8ce),
    ("square-wave/preemption", 0xbbd975d167662512),
    ("square-wave/migration-only", 0x94541e60dbad4039),
    ("diurnal/deflation", 0x18040e03f8e32443),
    ("diurnal/preemption", 0xdd27dd19c481e0c6),
    ("diurnal/migration-only", 0x806b5c4955a9bf67),
    ("spot-market/deflation", 0xcc9689d60eac5797),
    ("spot-market/preemption", 0x47a5024a364a59db),
    ("spot-market/migration-only", 0x6c51742403d363be),
];

/// Golden digests captured from the PR 6 full-rescan implementation on the
/// `fig_scheduler` quick grid.
const SCHEDULER_GOLDEN: [(&str, u64); 27] = [
    ("1250/deflation/fifo", 0xcc9689d60eac5797),
    ("1250/deflation/fifo+dirty", 0xed91bba7ad1cd770),
    ("1250/deflation/smallest-first", 0x0f6b3aded2480576),
    ("1250/deflation/edf", 0x6530f250711fc916),
    ("1250/deflation/edf+deflate", 0x74d5118bc81e756b),
    ("1250/migration-only/fifo", 0x6c51742403d363be),
    ("1250/migration-only/fifo+dirty", 0x45d7dbfa33adf2e5),
    ("1250/migration-only/smallest-first", 0x6801c0e66c1d7239),
    ("1250/migration-only/edf", 0x723005a1ae39601c),
    ("625/deflation/fifo", 0x631c87e4f8f98f39),
    ("625/deflation/fifo+dirty", 0x8d45c2e5d72dee83),
    ("625/deflation/smallest-first", 0xdd179ba772e1dd32),
    ("625/deflation/edf", 0x4675efc029dca5c3),
    ("625/deflation/edf+deflate", 0x1b4704b68263f06b),
    ("625/migration-only/fifo", 0xa51ea768bafdd004),
    ("625/migration-only/fifo+dirty", 0x3a5952a674154bea),
    ("625/migration-only/smallest-first", 0xbe250b707c2b5bb8),
    ("625/migration-only/edf", 0x5b6f57ba9b9b5616),
    ("312/deflation/fifo", 0xfb14e0fd4831917c),
    ("312/deflation/fifo+dirty", 0x98d793547b33aeb2),
    ("312/deflation/smallest-first", 0xd503f1c3f9fa7962),
    ("312/deflation/edf", 0xe31feccfe03f1636),
    ("312/deflation/edf+deflate", 0x7fc9149ca0aa51b6),
    ("312/migration-only/fifo", 0xa7597dc77d99926e),
    ("312/migration-only/fifo+dirty", 0x433523edc7746047),
    ("312/migration-only/smallest-first", 0x07accb34500856e8),
    ("312/migration-only/edf", 0x2cfe921db2db5f9f),
];

fn assert_matches_golden(actual: &[(String, u64)], golden: &[(&str, u64)], what: &str) {
    assert_eq!(actual.len(), golden.len(), "{what}: row count drifted");
    for ((label, hash), (want_label, want_hash)) in actual.iter().zip(golden) {
        assert_eq!(label, want_label, "{what}: row order drifted");
        assert_eq!(
            *hash, *want_hash,
            "{what} row `{label}`: SimResult drifted from the PR 6 full-rescan golden \
             (digest 0x{hash:016x}, pinned 0x{want_hash:016x})"
        );
    }
}

/// The incremental index under `PlacementEngine::default()` reproduces the
/// PR 6 `fig_transient` results byte for byte.
#[test]
fn default_engine_reproduces_pr6_fig_transient() {
    assert_eq!(PlacementEngine::default(), PlacementEngine::sequential());
    assert_matches_golden(&transient_digests(), &TRANSIENT_GOLDEN, "fig_transient");
}

/// The incremental index under `PlacementEngine::default()` reproduces the
/// PR 6 `fig_scheduler` results byte for byte.
#[test]
fn default_engine_reproduces_pr6_fig_scheduler() {
    assert_eq!(default_migration_cost().reclaim_deadline_secs, 30.0);
    assert_matches_golden(&scheduler_digests(), &SCHEDULER_GOLDEN, "fig_scheduler");
}

/// Re-pinning helper: prints the two golden arrays in source form.
#[test]
#[ignore = "re-pinning helper, run with --ignored --nocapture"]
fn print_current_digests() {
    println!("const TRANSIENT_GOLDEN: [(&str, u64); 9] = [");
    for (label, hash) in transient_digests() {
        println!("    (\"{label}\", 0x{hash:016x}),");
    }
    println!("];");
    println!("const SCHEDULER_GOLDEN: [(&str, u64); 27] = [");
    for (label, hash) in scheduler_digests() {
        println!("    (\"{label}\", 0x{hash:016x}),");
    }
    println!("];");
}
