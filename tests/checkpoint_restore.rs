//! The checkpoint/restore battery: the engine's snapshot contract pinned
//! end to end on the real experiment configurations.
//!
//! The contract (`ClusterSimulation::checkpoint` / `resume`): for any
//! event boundary `T`, `resume(checkpoint(T))` is equal to the
//! uninterrupted `run` in **every** `SimResult` field — per-VM records,
//! allocation histories, migration log, utilisation series, all counters
//! and the deterministic event count; only the re-measured wall clock is
//! exempt. Snapshot bytes themselves are versioned, little-endian,
//! wall-clock-free and canonically ordered, so they are independent of
//! the machine, the moment, the engine shard count and the telemetry
//! configuration; the byte format is golden-pinned below and may only
//! change together with a `SNAPSHOT_VERSION` bump.
//!
//! Checkpoint boundaries are "random": arbitrary-looking fractions of
//! the trace horizon from a seeded LCG (`tests/common`), different for
//! every configuration, reproducible across runs.

use deflate_bench::autoscale_exp::{autoscale_profiles, elastic_app, AutoscaleVariant};
use deflate_bench::transient_exp::{
    default_migration_cost, profiles, transient_simulation, transient_workload, SchedulerVariant,
    TransientMode, SCHEDULER_SWEEP_MBPS,
};
use deflate_bench::Scale;
use vmdeflate::cluster::manager::{ClusterConfig, PlacementKind, ReclamationMode};
use vmdeflate::cluster::sim::ClusterSimulation;
use vmdeflate::cluster::spec::{
    paper_server_capacity, servers_for_transient_overcommitment, WorkloadVm,
};
use vmdeflate::core::checkpoint::{CheckpointError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
use vmdeflate::core::placement::PartitionScheme;
use vmdeflate::core::policy::ProportionalDeflation;
use vmdeflate::core::shard::ShardConfig;
use vmdeflate::hypervisor::domain::DeflationMechanism;
use vmdeflate::transient::signal::{CapacityProfile, CapacitySchedule, TransientConfig};

mod common;
use common::{fnv1a64, Lcg};

/// Simulated trace horizon of the quick cluster experiments, seconds.
fn horizon_secs() -> f64 {
    Scale::Quick.cluster_trace_hours() * 3600.0
}

/// The battery check for one configuration: checkpoint at `at_secs`,
/// restore, and demand full `SimResult` equality with the uninterrupted
/// run — plus byte-identity of a second snapshot of the same boundary
/// (no wall-clock or other run-local value may leak into the bytes).
fn assert_restores_bit_identically(
    sim: &ClusterSimulation,
    workload: &[WorkloadVm],
    at_secs: f64,
    label: &str,
) {
    let full = sim.run(workload);
    let snapshot = sim.checkpoint(workload, at_secs);
    let resumed = sim
        .resume(workload, &snapshot)
        .unwrap_or_else(|e| panic!("{label}: own snapshot failed to restore: {e}"));
    assert_eq!(
        full, resumed,
        "{label}: resume(checkpoint({at_secs:.0}s)) diverged from the uninterrupted run"
    );
    let again = sim.checkpoint(workload, at_secs);
    assert_eq!(
        snapshot, again,
        "{label}: two checkpoints of the same boundary must be byte-identical"
    );
}

/// `fig_transient` quick configurations: every capacity profile, with the
/// reclamation mode rotated so all three modes are covered, each at its
/// own LCG-drawn boundary.
#[test]
fn fig_transient_configs_restore_at_random_boundaries() {
    let workload = transient_workload(Scale::Quick);
    let mut lcg = Lcg(0xC0FFEE);
    let modes = TransientMode::ALL;
    for (i, profile) in profiles().into_iter().enumerate() {
        let mode = modes[i % modes.len()];
        let sim = transient_simulation(
            &workload,
            Scale::Quick,
            mode,
            profile,
            default_migration_cost(),
            vmdeflate::core::policy::TransferPolicy::fifo(),
        );
        let at = lcg.fraction() * horizon_secs();
        assert_restores_bit_identically(
            &sim,
            &workload,
            at,
            &format!("fig_transient {}/{}", profile.name(), mode.name()),
        );
    }
}

/// `fig_scheduler` quick configurations: the three non-FIFO variants
/// (FIFO is the transient battery above) at the one-link budget in
/// deflation mode — the paths that exercise EDF admission control,
/// staged batches and deflate-then-migrate across a restore.
#[test]
fn fig_scheduler_configs_restore_at_random_boundaries() {
    let workload = transient_workload(Scale::Quick);
    let profile = CapacityProfile::spot_market_default();
    let budget = SCHEDULER_SWEEP_MBPS[0];
    let mut lcg = Lcg(0xB0A710AD);
    for variant in [
        SchedulerVariant::SmallestFirst,
        SchedulerVariant::Edf,
        SchedulerVariant::EdfDeflate,
    ] {
        let sim = transient_simulation(
            &workload,
            Scale::Quick,
            TransientMode::Deflation,
            profile,
            variant.cost(budget),
            variant.policy(),
        );
        let at = lcg.fraction() * horizon_secs();
        assert_restores_bit_identically(
            &sim,
            &workload,
            at,
            &format!("fig_scheduler {}", variant.name()),
        );
    }
}

/// The `fig_autoscale` quick configuration under each capacity profile:
/// the autoscaler's members, cooldowns, latency accumulator and stats
/// all cross the snapshot.
#[test]
fn fig_autoscale_configs_restore_at_random_boundaries() {
    let workload = transient_workload(Scale::Quick);
    let mut lcg = Lcg(0x5CA1AB1E);
    let variants = AutoscaleVariant::ALL;
    for (i, profile) in autoscale_profiles().into_iter().enumerate() {
        let variant = variants[i % variants.len()];
        let sim = autoscale_simulation(&workload, profile, variant);
        let at = lcg.fraction() * horizon_secs();
        assert_restores_bit_identically(
            &sim,
            &workload,
            at,
            &format!("fig_autoscale {}/{}", profile.name(), variant.name()),
        );
    }
}

/// The exact quick-scale `fig_autoscale` simulation (the construction the
/// shard-parity suite pins), reduced to the pieces a checkpoint crosses.
fn autoscale_simulation(
    workload: &[WorkloadVm],
    profile: CapacityProfile,
    variant: AutoscaleVariant,
) -> ClusterSimulation {
    let app = elastic_app();
    let capacity = paper_server_capacity();
    let background =
        servers_for_transient_overcommitment(workload, capacity, 0.0, profile.mean_availability());
    let elastic =
        (app.max_replicas as f64 * app.replica_size.cpu() / capacity.cpu()).ceil() as usize;
    let servers = background + elastic;
    let schedule = CapacitySchedule::generate(&TransientConfig {
        num_servers: servers,
        transient_fraction: 1.0,
        duration_secs: Scale::Quick.cluster_trace_hours() * 3600.0,
        profile,
        seed: Scale::Quick.seed(),
    });
    let config = ClusterConfig {
        num_servers: servers,
        server_capacity: capacity,
        placement: PlacementKind::CosineFitness,
        partitions: PartitionScheme::None,
        mechanism: DeflationMechanism::Transparent,
    };
    ClusterSimulation::new(
        config,
        ReclamationMode::Deflation(std::sync::Arc::new(ProportionalDeflation::default())),
    )
    .with_capacity_schedule(schedule)
    .with_migrate_back(true)
    .with_migration_cost(default_migration_cost())
    .with_utilization_ticks(deflate_bench::autoscale_exp::AUTOSCALE_TICK_SECS)
    .with_autoscale(variant.policy(), vec![app])
}

/// Snapshot bytes are independent of the engine shard count and of
/// telemetry, and a snapshot restores bit-identically under any shard
/// count with every in-memory sink attached — the acceptance matrix of
/// the checkpoint tentpole ({1, 2, 4} shards × telemetry on).
#[test]
fn snapshots_are_shard_and_telemetry_independent() {
    use vmdeflate::telemetry::{TelemetryEventSet, TelemetrySink, TelemetrySpec};
    let workload = transient_workload(Scale::Quick);
    let budget = SCHEDULER_SWEEP_MBPS[0];
    let variant = SchedulerVariant::EdfDeflate;
    let sim = |shards: usize, sink: TelemetrySink| {
        transient_simulation(
            &workload,
            Scale::Quick,
            TransientMode::Deflation,
            CapacityProfile::spot_market_default(),
            variant.cost(budget),
            variant.policy(),
        )
        .with_shards(ShardConfig::with_shards(shards))
        .with_telemetry(sink)
    };
    let observed_sink = || {
        let spec = TelemetrySpec::profiling()
            .with_event_log("unused.jsonl")
            .with_event_kinds(TelemetryEventSet::all())
            .with_chrome_trace("unused.trace.json");
        TelemetrySink::in_memory(&spec)
    };
    let at = Lcg(0xD15EA5E).fraction() * horizon_secs();
    let full = sim(1, TelemetrySink::disabled()).run(&workload);
    let baseline = sim(1, TelemetrySink::disabled()).checkpoint(&workload, at);
    for shards in [2, 4] {
        let snapshot = sim(shards, observed_sink()).checkpoint(&workload, at);
        assert_eq!(
            baseline, snapshot,
            "snapshot bytes changed at {shards} shards with telemetry on"
        );
    }
    for shards in [1, 2, 4] {
        let resumed = sim(shards, observed_sink())
            .resume(&workload, &baseline)
            .expect("snapshot must restore");
        assert_eq!(
            full, resumed,
            "restore diverged at {shards} shards with telemetry on"
        );
    }
}

/// Malformed snapshots are rejected with typed errors, never misread.
#[test]
fn malformed_snapshots_are_rejected() {
    let workload = transient_workload(Scale::Quick);
    let sim = transient_simulation(
        &workload,
        Scale::Quick,
        TransientMode::Deflation,
        CapacityProfile::spot_market_default(),
        default_migration_cost(),
        vmdeflate::core::policy::TransferPolicy::fifo(),
    );
    let snapshot = sim.checkpoint(&workload, 3600.0);
    // Bad magic.
    let mut bad = snapshot.clone();
    bad[0] ^= 0xFF;
    assert_eq!(
        sim.resume(&workload, &bad).unwrap_err(),
        CheckpointError::BadMagic
    );
    // Future version.
    let mut future = snapshot.clone();
    future[4..8].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
    assert!(matches!(
        sim.resume(&workload, &future).unwrap_err(),
        CheckpointError::VersionMismatch { .. }
    ));
    // Truncation anywhere must surface as an error, not a bogus state.
    assert!(sim
        .resume(&workload, &snapshot[..snapshot.len() - 1])
        .is_err());
    // Trailing garbage is detected too.
    let mut padded = snapshot.clone();
    padded.push(0);
    assert!(sim.resume(&workload, &padded).is_err());
}

/// Golden pin of the snapshot byte format: the FNV-1a digest of the
/// quick-scale spot-market/deflation snapshot at a fixed boundary. Any
/// change to the byte layout moves this digest and MUST come with a
/// [`SNAPSHOT_VERSION`] bump (and a re-pin; run with
/// `--ignored --nocapture` below for the new constant). The header is
/// also pinned literally so the magic/version framing itself cannot
/// silently change.
#[test]
fn snapshot_byte_format_is_golden_pinned() {
    assert_eq!(
        SNAPSHOT_VERSION, 1,
        "version bump requires re-pinning SNAPSHOT_GOLDEN"
    );
    let snapshot = golden_snapshot();
    assert_eq!(&snapshot[..4], &SNAPSHOT_MAGIC);
    assert_eq!(&snapshot[4..8], &SNAPSHOT_VERSION.to_le_bytes());
    assert_eq!(
        fnv1a64(&snapshot),
        SNAPSHOT_GOLDEN,
        "snapshot byte format drifted without a SNAPSHOT_VERSION bump \
         (got 0x{:016x})",
        fnv1a64(&snapshot)
    );
}

/// Golden digest captured from the version-1 snapshot format.
const SNAPSHOT_GOLDEN: u64 = 0xb271_e12b_b659_3bfa;

fn golden_snapshot() -> Vec<u8> {
    let workload = transient_workload(Scale::Quick);
    let sim = transient_simulation(
        &workload,
        Scale::Quick,
        TransientMode::Deflation,
        CapacityProfile::spot_market_default(),
        default_migration_cost(),
        vmdeflate::core::policy::TransferPolicy::fifo(),
    );
    sim.checkpoint(&workload, 4.0 * 3600.0)
}

/// Re-pinning helper: prints the current snapshot digest in source form.
#[test]
#[ignore = "re-pinning helper, run with --ignored --nocapture"]
fn print_current_snapshot_digest() {
    println!(
        "const SNAPSHOT_GOLDEN: u64 = 0x{:016x};",
        fnv1a64(&golden_snapshot())
    );
}
