//! Placement-equivalence battery for the incremental score index (PR 7).
//!
//! The cluster manager keeps an incremental [`PlacementIndex`] of cached
//! server views and re-derives only servers marked dirty since the last
//! ranking pass. Correctness therefore hinges on one invariant: **every
//! view-affecting mutation marks its server dirty**. A missed mark makes
//! the index rank against a stale view and silently pick a different
//! server than the pre-index full rescan would.
//!
//! These property tests hammer that invariant with randomized mutation
//! sequences — arrivals, departures, capacity reclaim/restore, costed
//! migration completions, autoscale-style replica bursts and (view-neutral)
//! utilisation observations — and after **every** mutation compare the
//! index's pick ([`ClusterManager::placement_preview`]) against a
//! from-scratch full rescan ([`ClusterManager::placement_full_rescan`])
//! for a panel of probe VMs, across every placement policy, every
//! reclamation mode and every partition scheme. A separate sequence runs
//! the parallel [`PlacementEngine`] and pins it to the same full-rescan
//! picks, score bits included.
//!
//! [`PlacementIndex`]: vmdeflate::cluster::placement::PlacementIndex
//! [`ClusterManager::placement_preview`]: vmdeflate::cluster::manager::ClusterManager::placement_preview
//! [`ClusterManager::placement_full_rescan`]: vmdeflate::cluster::manager::ClusterManager::placement_full_rescan

use std::sync::Arc;
use vmdeflate::cluster::manager::{
    ClusterConfig, ClusterManager, PendingMigration, PlacementKind, PlacementResult,
    ReclamationMode,
};
use vmdeflate::core::placement::{PartitionScheme, PlacementDecision, PlacementEngine};
use vmdeflate::core::policy::ProportionalDeflation;
use vmdeflate::core::resources::ResourceVector;
use vmdeflate::core::vm::{Priority, ServerId, VmClass, VmId, VmSpec};
use vmdeflate::hypervisor::domain::DeflationMechanism;
use vmdeflate::hypervisor::migration::MigrationCostModel;
use vmdeflate::transient::pool::WorkerPool;

/// Tiny deterministic xorshift64 PRNG — no external dependency, stable
/// across platforms, so every CI run replays the same mutation sequences.
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> Self {
        XorShift64(seed | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform in `0..n` (`n > 0`). Modulo bias is irrelevant here — the
    /// sequences only need to be deterministic and varied, not unbiased.
    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A random arriving VM: sized so that a dozen-server cluster saturates
/// partway through a sequence, forcing the deflation / preemption /
/// rejection paths to all fire. Mostly deflatable (some with a priority
/// and a priority-derived floor), occasionally on-demand.
fn random_spec(rng: &mut XorShift64, id: u64) -> VmSpec {
    let cpu_millis = [2_000.0, 4_000.0, 8_000.0, 12_000.0, 16_000.0][rng.below(5)];
    let memory_mb = [4_096.0, 8_192.0, 16_384.0, 32_768.0][rng.below(4)];
    let class = VmClass::ALL[rng.below(3)];
    let size = ResourceVector::cpu_mem(cpu_millis, memory_mb);
    match rng.below(10) {
        0 => VmSpec::on_demand(VmId(id), class, size),
        1..=3 => VmSpec::deflatable(VmId(id), class, size)
            .with_priority(Priority::LEVELS[rng.below(4)])
            .with_priority_derived_min(),
        _ => VmSpec::deflatable(VmId(id), class, size),
    }
}

/// The probe panel: specs the index and the full rescan must agree on
/// after every mutation. Chosen to land in different partitions (deflatable
/// vs on-demand, low vs high priority) and different size regimes.
fn probe_specs() -> Vec<VmSpec> {
    let small = ResourceVector::cpu_mem(2_000.0, 4_096.0);
    let large = ResourceVector::cpu_mem(16_000.0, 32_768.0);
    vec![
        VmSpec::deflatable(VmId(9_000_001), VmClass::Interactive, small),
        VmSpec::deflatable(VmId(9_000_002), VmClass::DelayInsensitive, large)
            .with_priority(Priority::LEVELS[3])
            .with_priority_derived_min(),
        VmSpec::on_demand(VmId(9_000_003), VmClass::Unknown, small),
    ]
}

/// Bit-exact agreement: same server, same deflation requirement and the
/// score identical down to the last mantissa bit (or both `None`).
fn assert_same_pick(
    label: &str,
    step: usize,
    probe: &VmSpec,
    index_pick: Option<PlacementDecision>,
    rescan_pick: Option<PlacementDecision>,
) {
    let key = |d: &Option<PlacementDecision>| {
        d.map(|d| (d.server, d.requires_deflation, d.score.to_bits()))
    };
    assert_eq!(
        key(&index_pick),
        key(&rescan_pick),
        "{label}, step {step}, probe {}: incremental index picked {index_pick:?} but a \
         from-scratch full rescan picked {rescan_pick:?} — a view-affecting mutation \
         was not marked dirty",
        probe.id
    );
}

/// Drive one randomized mutation sequence against `manager`, asserting
/// index/full-rescan agreement on the probe panel after every mutation.
fn drive(label: &str, manager: &mut ClusterManager, seed: u64, steps: usize) {
    let mut rng = XorShift64::new(seed);
    let probes = probe_specs();
    let num_servers = manager.num_servers() as u32;
    let mut placed: Vec<VmId> = Vec::new();
    let mut pending: Vec<PendingMigration> = Vec::new();
    let mut next_id: u64 = 1;
    let mut now: f64 = 0.0;

    let note_result = |result: &PlacementResult, id: VmId, placed: &mut Vec<VmId>| match result {
        PlacementResult::Rejected => {}
        PlacementResult::PlacedWithPreemption { preempted, .. } => {
            placed.retain(|vm| !preempted.contains(vm));
            placed.push(id);
        }
        _ => placed.push(id),
    };

    for step in 0..steps {
        now += 30.0 + rng.unit() * 270.0;
        match rng.below(100) {
            // Arrival — the op the index exists to serve.
            0..=34 => {
                let spec = random_spec(&mut rng, next_id);
                let id = spec.id;
                next_id += 1;
                let result = manager.place_vm(spec);
                note_result(&result, id, &mut placed);
            }
            // Departure of a random resident (in-flight VMs are settled
            // through complete_migration instead).
            35..=54 => {
                if let Some(pos) = (!placed.is_empty())
                    .then(|| rng.below(placed.len()))
                    .filter(|&p| !manager.is_in_flight(placed[p]))
                {
                    let vm = placed.swap_remove(pos);
                    manager.remove_vm(vm).expect("resident VM departs");
                }
            }
            // Provider reclaims part of a server: the deflate → migrate →
            // evict ladder runs, possibly starting costed transfers.
            55..=69 => {
                let server = ServerId(rng.below(num_servers as usize) as u32);
                let fraction = 0.3 + rng.unit() * 0.6;
                let outcome = manager.reclaim_capacity(server, fraction, now);
                placed.retain(|vm| !outcome.victims.contains(vm));
                pending.extend(outcome.started);
            }
            // Provider hands capacity back: reinflation plus migrate-backs.
            70..=81 => {
                let server = ServerId(rng.below(num_servers as usize) as u32);
                let outcome = manager.restore_capacity(server, 1.0, true, now);
                placed.retain(|vm| !outcome.victims.contains(vm));
                pending.extend(outcome.started);
            }
            // A transfer's MigrationComplete event fires (possibly past its
            // deadline, aborting the transfer and evicting the VM).
            82..=89 => {
                if !pending.is_empty() {
                    let flight = pending.swap_remove(rng.below(pending.len()));
                    now = now.max(flight.event_secs);
                    let outcome = manager.complete_migration(flight.id, now);
                    placed.retain(|vm| !outcome.victims.contains(vm));
                }
            }
            // Autoscale-style burst: an elastic app scales a replica pool
            // out (identical specs, back to back) or back in.
            90..=94 => {
                if rng.below(2) == 0 {
                    let template = random_spec(&mut rng, 0);
                    for _ in 0..3 {
                        let mut replica = template.clone();
                        replica.id = VmId(next_id);
                        next_id += 1;
                        let result = manager.place_vm(replica);
                        note_result(&result, VmId(next_id - 1), &mut placed);
                    }
                } else {
                    for _ in 0..3 {
                        if let Some(pos) = (!placed.is_empty())
                            .then(|| rng.below(placed.len()))
                            .filter(|&p| !manager.is_in_flight(placed[p]))
                        {
                            let vm = placed.swap_remove(pos);
                            manager.remove_vm(vm).expect("resident VM departs");
                        }
                    }
                }
            }
            // View-neutral utilisation observation: must NOT change any
            // pick (and must not be needed to keep the index fresh).
            _ => {
                if !placed.is_empty() {
                    let vm = placed[rng.below(placed.len())];
                    let sample = rng.unit();
                    manager.observe_vm_utilization(vm, sample);
                }
            }
        }

        for probe in &probes {
            let rescan = manager.placement_full_rescan(probe, &[]);
            let index = manager.placement_preview(probe, &[]);
            assert_same_pick(label, step, probe, index, rescan);
        }
    }

    // Settle every still-pending transfer and re-check once more.
    for flight in pending.drain(..) {
        now = now.max(flight.event_secs);
        manager.complete_migration(flight.id, now);
        for probe in &probes {
            let rescan = manager.placement_full_rescan(probe, &[]);
            let index = manager.placement_preview(probe, &[]);
            assert_same_pick(label, steps, probe, index, rescan);
        }
    }
}

fn config(
    num_servers: usize,
    placement: PlacementKind,
    partitions: PartitionScheme,
) -> ClusterConfig {
    ClusterConfig {
        placement,
        partitions,
        mechanism: DeflationMechanism::Transparent,
        ..ClusterConfig::paper_default(num_servers)
    }
}

fn modes() -> Vec<(&'static str, ReclamationMode)> {
    vec![
        (
            "deflation",
            ReclamationMode::Deflation(Arc::new(ProportionalDeflation::default())),
        ),
        ("preemption", ReclamationMode::Preemption),
        ("migration-only", ReclamationMode::MigrationOnly),
    ]
}

/// Every placement policy × every reclamation mode: the index pick equals
/// the full-rescan pick after every mutation of a 150-step random
/// sequence (costed migrations included).
#[test]
fn index_matches_full_rescan_across_policies_and_modes() {
    let policies = [
        PlacementKind::CosineFitness,
        PlacementKind::FirstFit,
        PlacementKind::BestFit,
        PlacementKind::WorstFit,
    ];
    for (p, policy) in policies.into_iter().enumerate() {
        for (m, (mode_name, mode)) in modes().into_iter().enumerate() {
            let label = format!("{policy:?}/{mode_name}");
            let mut manager = ClusterManager::new(&config(12, policy, PartitionScheme::None), mode)
                .with_migration_cost(MigrationCostModel::lan_default());
            drive(
                &label,
                &mut manager,
                0xDEF1A7E + (p as u64) * 31 + m as u64,
                150,
            );
        }
    }
}

/// Partitioned clusters route probes into different server pools; the
/// index must agree with the full rescan inside every pool.
#[test]
fn index_matches_full_rescan_under_partitioning() {
    let schemes = [
        ("by-priority", PartitionScheme::ByPriority { pools: 2 }),
        (
            "on-demand-split",
            PartitionScheme::OnDemandSplit {
                on_demand_fraction: 0.25,
            },
        ),
    ];
    for (s, (name, scheme)) in schemes.into_iter().enumerate() {
        let label = format!("cosine/deflation/{name}");
        let mut manager = ClusterManager::new(
            &config(12, PlacementKind::CosineFitness, scheme),
            ReclamationMode::Deflation(Arc::new(ProportionalDeflation::default())),
        )
        .with_migration_cost(MigrationCostModel::lan_default());
        drive(&label, &mut manager, 0x5EED + s as u64, 150);
    }
}

/// The parallel ranking fan-out (workers on a shared persistent pool)
/// picks exactly what the sequential full rescan picks — same server,
/// same score bits — after every mutation. This is the manager-level pin
/// that `PlacementEngine::parallel` is a pure performance knob.
#[test]
fn parallel_engine_matches_sequential_full_rescan() {
    let pool = Arc::new(WorkerPool::new(4));
    for (mode_name, mode) in modes() {
        let label = format!("parallel(4)/{mode_name}");
        // 32 servers so the fan-out path (not its small-cluster sequential
        // fallback) is actually exercised: 32 ≥ 2 × 4 workers.
        let mut manager = ClusterManager::new(
            &config(32, PlacementKind::CosineFitness, PartitionScheme::None),
            mode,
        )
        .with_migration_cost(MigrationCostModel::lan_default())
        .with_placement_engine(PlacementEngine::parallel(4))
        .with_worker_pool(Some(pool.clone()));
        assert!(manager.placement_engine().is_parallel());
        drive(&label, &mut manager, 0xFA20u64, 120);
    }
}
