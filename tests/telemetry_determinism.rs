//! The standing `deflate-telemetry` contracts, end to end:
//!
//! * **Off by default** — a `ClusterSimulation` without the telemetry
//!   knob runs with the disabled sink and produces an empty report.
//! * **Observation never changes results** — enabling every sink
//!   (metrics + profiler + JSONL event log + Chrome trace) leaves every
//!   `SimResult` field bit-identical to a telemetry-off run. Wall clock
//!   and shard count are the only exemptions, and those are already
//!   outside `SimResult`'s equality.
//! * **Traces are well-formed** — every JSONL line round-trips through
//!   the stub-serde deserializer, and the Chrome trace validates as a
//!   parseable JSON array with matched begin/end span pairs.

use deflate_bench::scale::Scale;
use deflate_bench::scale_exp::{
    run_scale_cell, run_scale_cell_audited, run_scale_cell_with_telemetry, scale_workload,
};
use vmdeflate::cluster::spec::WorkloadVm;
use vmdeflate::core::audit::AuditSpec;
use vmdeflate::core::shard::ShardConfig;
use vmdeflate::telemetry::{
    parse_event_line, validate_chrome_trace, TelemetryEventSet, TelemetrySink, TelemetrySpec,
};

/// The quick spot-market scenario at test size (the same configuration
/// `fig_profile` replays at experiment scale).
fn workload() -> Vec<WorkloadVm> {
    scale_workload(Scale::Quick, 400)
}

/// A spec with every sink enabled; paths are placeholders — tests attach
/// it through [`TelemetrySink::in_memory`], which performs no I/O.
fn everything_on() -> TelemetrySpec {
    TelemetrySpec::profiling()
        .with_event_log("unused.jsonl")
        .with_event_kinds(TelemetryEventSet::all())
        .with_chrome_trace("unused.trace.json")
}

#[test]
fn every_sink_enabled_leaves_the_result_bit_identical() {
    let workload = workload();
    let (baseline, servers) = run_scale_cell(&workload, Scale::Quick, ShardConfig::sequential());
    assert!(servers > 0);
    assert!(
        baseline.transient.reclaim_events > 0,
        "contract would be vacuous without reclamation activity"
    );
    let sink = TelemetrySink::in_memory(&everything_on());
    let (observed, _) = run_scale_cell_with_telemetry(
        &workload,
        Scale::Quick,
        ShardConfig::sequential(),
        sink.clone(),
    );
    assert_eq!(
        baseline, observed,
        "telemetry-on run diverged from telemetry-off"
    );
    let report = sink.report();
    assert!(!report.phases.is_empty(), "profiler collected nothing");
    assert!(report.event_lines > 0, "event log collected nothing");
    assert!(report.chrome_events > 0, "chrome trace collected nothing");
    assert_eq!(report.io_errors, 0);
}

/// The auditor analogue of the telemetry contract: every invariant
/// checker on (including the sampled placement rescan) both *passes* —
/// the engine upholds its invariants on the quick spot-market scenario,
/// a violation panics the run — and leaves the `SimResult` bit-identical
/// to the unaudited baseline, because checkers are strictly read-only.
#[test]
fn every_audit_checker_enabled_leaves_the_result_bit_identical() {
    let workload = workload();
    let (baseline, _) = run_scale_cell(&workload, Scale::Quick, ShardConfig::sequential());
    assert!(
        baseline.transient.reclaim_events > 0,
        "contract would be vacuous without reclamation activity"
    );
    for (name, spec) in [
        ("all checkers", AuditSpec::all()),
        (
            "all checkers, dense placement rescan",
            AuditSpec::all().with_placement_sample_every(1),
        ),
    ] {
        let (audited, _) =
            run_scale_cell_audited(&workload, Scale::Quick, ShardConfig::sequential(), spec);
        assert_eq!(
            baseline, audited,
            "auditor-on run ({name}) diverged from auditor-off"
        );
    }
}

/// The auditor is opt-in: the default spec has no checkers.
#[test]
fn audit_is_off_by_default() {
    assert!(AuditSpec::default().is_off());
    assert!(AuditSpec::off().is_off());
    assert!(!AuditSpec::all().is_off());
}

#[test]
fn telemetry_is_off_by_default_and_the_disabled_sink_is_inert() {
    use vmdeflate::cluster::manager::{ClusterConfig, PlacementKind, ReclamationMode};
    use vmdeflate::cluster::sim::ClusterSimulation;
    use vmdeflate::cluster::spec::paper_server_capacity;
    use vmdeflate::core::placement::PartitionScheme;
    use vmdeflate::core::policy::ProportionalDeflation;
    use vmdeflate::hypervisor::domain::DeflationMechanism;
    let config = ClusterConfig {
        num_servers: 4,
        server_capacity: paper_server_capacity(),
        placement: PlacementKind::CosineFitness,
        partitions: PartitionScheme::None,
        mechanism: DeflationMechanism::Transparent,
    };
    let sim = ClusterSimulation::new(
        config,
        ReclamationMode::Deflation(std::sync::Arc::new(ProportionalDeflation::default())),
    );
    assert!(
        !sim.telemetry().enabled(),
        "telemetry must be off by default"
    );
    // The off spec builds straight back to the disabled sink.
    let sink = TelemetrySink::from_spec(&TelemetrySpec::off()).expect("off spec never opens files");
    assert!(!sink.enabled());
    assert_eq!(sink.report(), Default::default());
}

#[test]
fn jsonl_lines_round_trip_through_the_stub_deserializer() {
    let workload = workload();
    let sink = TelemetrySink::in_memory(&everything_on());
    let _ = run_scale_cell_with_telemetry(
        &workload,
        Scale::Quick,
        ShardConfig::with_shards(2),
        sink.clone(),
    );
    let lines = sink.event_log_lines().expect("memory event log");
    assert!(!lines.is_empty());
    let mut last_time = f64::NEG_INFINITY;
    let mut kinds_seen = std::collections::BTreeSet::new();
    for line in &lines {
        let event = parse_event_line(line)
            .unwrap_or_else(|err| panic!("unparseable JSONL line {line:?}: {err}"));
        assert!(
            event.time >= last_time,
            "event log out of order: {} after {}",
            event.time,
            last_time
        );
        last_time = event.time;
        kinds_seen.insert(event.kind.name());
    }
    // The spot-market scenario must surface at least arrivals,
    // departures, capacity reclamations and utilisation ticks.
    for expected in [
        "arrival",
        "departure",
        "capacity_reclaim",
        "utilization_tick",
    ] {
        assert!(
            kinds_seen.contains(expected),
            "no {expected} events in {kinds_seen:?}"
        );
    }
}

#[test]
fn kind_filter_and_sampling_thin_the_event_log() {
    let workload = workload();
    let run = |spec: &TelemetrySpec| {
        let sink = TelemetrySink::in_memory(spec);
        let _ = run_scale_cell_with_telemetry(
            &workload,
            Scale::Quick,
            ShardConfig::sequential(),
            sink.clone(),
        );
        sink.event_log_lines().expect("memory event log")
    };
    let all = run(&everything_on());
    // Default kind filter (decisions) drops the high-volume kinds.
    let decisions = run(&TelemetrySpec::default().with_event_log("unused.jsonl"));
    assert!(!decisions.is_empty());
    assert!(decisions.len() < all.len());
    for line in &decisions {
        let event = parse_event_line(line).expect("parseable line");
        assert!(
            TelemetryEventSet::decisions().contains(event.kind),
            "filtered log leaked {:?}",
            event.kind
        );
    }
    // Sampling every 10th matching event cuts the volume accordingly.
    let sampled = run(&everything_on().with_sample_every(10));
    assert_eq!(sampled.len() as u64, all.len().div_ceil(10) as u64);
    // Neither configuration changes the simulation (spot-check: the
    // filtered/sampled runs above all completed on the same workload —
    // full equality is pinned by every_sink_enabled_...).
}

#[test]
fn chrome_trace_is_valid_and_spans_are_matched() {
    let workload = workload();
    let sink = TelemetrySink::in_memory(&everything_on());
    let _ = run_scale_cell_with_telemetry(
        &workload,
        Scale::Quick,
        ShardConfig::with_shards(2),
        sink.clone(),
    );
    let json = sink.chrome_trace_json().expect("memory chrome trace");
    let stats = validate_chrome_trace(&json).expect("well-formed chrome trace");
    assert!(stats.spans > 0);
    assert_eq!(stats.events, 2 * stats.spans, "unmatched begin/end pairs");
    assert!(
        stats.threads >= 3,
        "coordinator + 2 worker tids expected, saw {}",
        stats.threads
    );
    assert!(stats.max_depth >= 2, "nested spans expected");
}

#[test]
fn file_sinks_write_the_same_traces_to_disk() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let log_path = dir.join(format!("telemetry_determinism_{pid}.jsonl"));
    let trace_path = dir.join(format!("telemetry_determinism_{pid}.trace.json"));
    let spec = TelemetrySpec::profiling()
        .with_event_log(&log_path)
        .with_event_kinds(TelemetryEventSet::all())
        .with_chrome_trace(&trace_path);
    let workload = workload();
    let (baseline, _) = run_scale_cell(&workload, Scale::Quick, ShardConfig::sequential());
    let sink = TelemetrySink::from_spec(&spec).expect("temp files open");
    let (observed, _) = run_scale_cell_with_telemetry(
        &workload,
        Scale::Quick,
        ShardConfig::sequential(),
        sink.clone(),
    );
    assert_eq!(baseline, observed, "file sinks changed the result");
    let report = sink.finish().expect("flush succeeds");
    assert_eq!(report.io_errors, 0);
    let log = std::fs::read_to_string(&log_path).expect("event log written");
    assert_eq!(log.lines().count() as u64, report.event_lines);
    for line in log.lines() {
        parse_event_line(line).expect("parseable line on disk");
    }
    let trace = std::fs::read_to_string(&trace_path).expect("chrome trace written");
    validate_chrome_trace(&trace).expect("valid chrome trace on disk");
    let _ = std::fs::remove_file(&log_path);
    let _ = std::fs::remove_file(&trace_path);
}
