//! Integration tests for the migration cost model: page-transfer time in
//! trace-driven runs, deadline aborts surfacing as evictions, bandwidth
//! budgets queueing transfers, and the double-counting property of
//! in-flight migrations (a migrating VM occupies exactly its source slot
//! and its destination reservation, never more).

use proptest::prelude::*;
use std::sync::Arc;
use vmdeflate::cluster::prelude::*;
use vmdeflate::core::placement::PartitionScheme;
use vmdeflate::core::policy::ProportionalDeflation;
use vmdeflate::core::resources::ResourceVector;
use vmdeflate::core::vm::{Priority, ServerId, VmClass, VmId, VmSpec};
use vmdeflate::hypervisor::domain::DeflationMechanism;
use vmdeflate::traces::azure::{AzureTraceConfig, AzureTraceGenerator};
use vmdeflate::transient::signal::{CapacityProfile, CapacitySchedule, TransientConfig};

fn cluster_config(num_servers: usize, capacity: ResourceVector) -> ClusterConfig {
    ClusterConfig {
        num_servers,
        server_capacity: capacity,
        placement: PlacementKind::CosineFitness,
        partitions: PartitionScheme::None,
        mechanism: DeflationMechanism::Transparent,
    }
}

/// 100 MiB/s links, no overhead/floor, one transfer slot per server.
fn slow_model() -> MigrationCostModel {
    MigrationCostModel {
        link_bandwidth_mbps: 100.0,
        dirty_page_overhead: 1.0,
        setup_floor_secs: 0.0,
        per_server_bandwidth_mbps: 100.0,
        reclaim_deadline_secs: f64::INFINITY,
        ..MigrationCostModel::instant()
    }
}

/// A trace-driven run with costed migrations stays deterministic, charges
/// every completed migration a positive duration, and keeps the
/// migration-event list consistent with the counters.
#[test]
fn costed_transient_run_is_deterministic_and_charges_transfers() {
    let traces = AzureTraceGenerator::generate(&AzureTraceConfig {
        num_vms: 160,
        duration_hours: 10.0,
        seed: 23,
        ..Default::default()
    });
    let workload = workload_from_azure(&traces, MinAllocationRule::None);
    let capacity = paper_server_capacity();
    let servers = min_cluster_size(&workload, capacity);
    let schedule = CapacitySchedule::generate(&TransientConfig {
        num_servers: servers,
        transient_fraction: 1.0,
        duration_secs: 10.0 * 3600.0,
        profile: CapacityProfile::SquareWave {
            period_secs: 2.0 * 3600.0,
            keep_fraction: 0.45,
            duty: 0.35,
        },
        seed: 23,
    });
    let run = || {
        ClusterSimulation::new(
            cluster_config(servers, capacity),
            ReclamationMode::MigrationOnly,
        )
        .with_capacity_schedule(schedule.clone())
        .with_migrate_back(true)
        .with_migration_cost(MigrationCostModel::lan_default())
        .run(&workload)
    };
    let result = run();
    assert_eq!(result, run(), "costed runs must stay deterministic");
    assert!(
        !result.migrations.is_empty(),
        "square-wave reclamation must force migrations: {:?}",
        result.transient
    );
    for m in &result.migrations {
        assert!(m.duration_secs > 0.0, "free migration slipped through");
        assert!(m.volume_mb > 0.0);
        assert_ne!(m.from, m.to);
        // Completion times never precede the transfer itself.
        assert!(m.time_secs >= m.duration_secs);
    }
    assert_eq!(
        result.migrations.len(),
        result.transient.migrations + result.transient.migrations_back
    );
    assert!(result.total_migration_secs() > 0.0);
    assert!(result.mean_migration_secs() > 0.0);
}

/// A deadline shorter than any transfer turns every attempted migration
/// into an abort-with-evict, visible both in the counters and as `Evicted`
/// outcomes at the deadline instant.
#[test]
fn deadline_aborts_surface_as_evictions_in_sim_records() {
    let traces = AzureTraceGenerator::generate(&AzureTraceConfig {
        num_vms: 120,
        duration_hours: 8.0,
        seed: 29,
        ..Default::default()
    });
    let workload = workload_from_azure(&traces, MinAllocationRule::None);
    let capacity = paper_server_capacity();
    let servers = min_cluster_size(&workload, capacity);
    let schedule = CapacitySchedule::generate(&TransientConfig {
        num_servers: servers,
        transient_fraction: 1.0,
        duration_secs: 8.0 * 3600.0,
        profile: CapacityProfile::SquareWave {
            period_secs: 3.0 * 3600.0,
            keep_fraction: 0.4,
            duty: 0.3,
        },
        seed: 29,
    });
    // 10 MiB/s and a 5 s deadline: no VM-sized footprint can make it.
    let hopeless = MigrationCostModel {
        link_bandwidth_mbps: 10.0,
        dirty_page_overhead: 1.0,
        setup_floor_secs: 0.0,
        per_server_bandwidth_mbps: 10.0,
        reclaim_deadline_secs: 5.0,
        ..MigrationCostModel::instant()
    };
    let result = ClusterSimulation::new(
        cluster_config(servers, capacity),
        ReclamationMode::MigrationOnly,
    )
    .with_capacity_schedule(schedule)
    .with_migration_cost(hopeless)
    .run(&workload);
    assert!(
        result.transient.migration_aborts > 0,
        "hopeless link must abort transfers: {:?}",
        result.transient
    );
    // No transfer can complete, so every started migration aborted.
    assert_eq!(result.transient.migrations, 0);
    assert!(result.migrations.is_empty());
    let evicted = result
        .records
        .iter()
        .filter(|r| matches!(r.outcome, VmOutcome::Evicted { .. }))
        .count();
    assert!(
        evicted >= result.transient.migration_aborts,
        "every abort is an eviction: {evicted} < {}",
        result.transient.migration_aborts
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The reservation property of in-flight migrations: while transfers
    /// are on the wire, a migrating VM has exactly one source copy and one
    /// destination reservation (never more), every other surviving VM has
    /// exactly one copy, each VM is reported once, and no server exceeds
    /// its capacity once pledged-outbound allocations are discounted. After
    /// all completions the strict physical invariant holds again.
    #[test]
    fn in_flight_migrations_never_double_count_capacity(
        vms in prop::collection::vec(
            (1.0f64..4.0, 1024.0f64..6144.0, 0.1f64..0.9),
            2..12,
        ),
        keep in 0.1f64..0.6,
    ) {
        let capacity = ResourceVector::cpu_mem(16_000.0, 32_768.0);
        let mut cluster = ClusterManager::new(
            &cluster_config(3, capacity),
            ReclamationMode::Deflation(Arc::new(ProportionalDeflation::default())),
        )
        .with_migration_cost(slow_model());
        let mut placed: Vec<VmId> = Vec::new();
        for (i, &(cores, mem, priority)) in vms.iter().enumerate() {
            // Half the VMs are on-demand so deflation cannot absorb the
            // whole reclamation and migrations actually start.
            let id = VmId(i as u64);
            let size = ResourceVector::cpu_mem(cores * 1000.0, mem);
            let spec = if i % 2 == 0 {
                VmSpec::on_demand(id, VmClass::Unknown, size)
            } else {
                VmSpec::deflatable(id, VmClass::Interactive, size)
                    .with_priority(Priority::new(priority))
            };
            if cluster.place_vm(spec).is_placed() {
                placed.push(id);
            }
        }
        prop_assert!(cluster.check_invariants());

        let outcome = cluster.reclaim_capacity(ServerId(0), keep, 0.0);
        let victims = &outcome.victims;
        let survivors: Vec<VmId> =
            placed.iter().copied().filter(|vm| !victims.contains(vm)).collect();

        // During flight: copy counts are exact.
        let copies = |cluster: &ClusterManager, vm: VmId| {
            cluster.servers().filter(|s| s.domain(vm).is_some()).count()
        };
        prop_assert_eq!(cluster.in_flight_count(), outcome.started.len());
        for pending in &outcome.started {
            prop_assert!(cluster.is_in_flight(pending.vm));
            prop_assert_eq!(
                copies(&cluster, pending.vm), 2,
                "in-flight vm {} must have exactly source + reservation", pending.vm
            );
        }
        for &vm in &survivors {
            if !cluster.is_in_flight(vm) {
                prop_assert_eq!(copies(&cluster, vm), 1, "resident vm {} duplicated", vm);
            }
        }
        for &vm in victims {
            prop_assert_eq!(copies(&cluster, vm), 0, "victim vm {} still resident", vm);
        }
        // Each surviving VM reported exactly once despite dual residency.
        let fractions = cluster.running_allocation_fractions();
        prop_assert_eq!(fractions.len(), survivors.len());
        // Capacity minus pledged-outbound stays within bounds everywhere.
        prop_assert!(cluster.check_invariants());

        // Drain the transfers in event order; afterwards the strict
        // physical invariant holds on every server.
        let mut pending = outcome.started.clone();
        pending.sort_by(|a, b| a.event_secs.total_cmp(&b.event_secs));
        for p in pending {
            cluster.complete_migration(p.id, p.event_secs);
        }
        prop_assert_eq!(cluster.in_flight_count(), 0);
        for server in cluster.servers() {
            prop_assert!(
                server.check_capacity_invariant().is_ok(),
                "server {} over capacity after completions", server.id
            );
        }
        for &vm in &survivors {
            prop_assert_eq!(copies(&cluster, vm), 1);
        }
    }
}
