//! Offline markdown link check over the README and `docs/`: every
//! relative link must resolve to a file in the repository, and every
//! `fig*` experiment binary the docs mention must actually exist under
//! `crates/bench/src/bin/` — so the figure→binary tables cannot silently
//! rot as binaries are added or renamed. Runs in CI as its own step.

use std::fs;
use std::path::PathBuf;

/// The markdown files under the link check. `docs/` is globbed so new
/// documents are covered automatically.
fn checked_files() -> Vec<PathBuf> {
    let root = repo_root();
    let mut files = vec![root.join("README.md")];
    let docs = fs::read_dir(root.join("docs")).expect("docs/ directory must exist");
    for entry in docs {
        let path = entry.expect("readable docs entry").path();
        if path.extension().is_some_and(|e| e == "md") {
            files.push(path);
        }
    }
    files.sort();
    files
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Extract the targets of inline markdown links `[text](target)`.
fn link_targets(markdown: &str) -> Vec<String> {
    let bytes = markdown.as_bytes();
    let mut targets = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
            let start = i + 2;
            if let Some(len) = markdown[start..].find(')') {
                targets.push(markdown[start..start + len].to_string());
                i = start + len;
            }
        }
        i += 1;
    }
    targets
}

#[test]
fn relative_links_resolve() {
    let mut broken = Vec::new();
    for file in checked_files() {
        let content = fs::read_to_string(&file).expect("readable markdown");
        let dir = file.parent().expect("file has a parent");
        for target in link_targets(&content) {
            // External and intra-page links are out of scope for an
            // offline check.
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
                || target.starts_with('#')
            {
                continue;
            }
            // Strip an anchor suffix: `docs/FOO.md#section` → `docs/FOO.md`.
            let path_part = target.split('#').next().unwrap_or(&target);
            if path_part.is_empty() {
                continue;
            }
            if !dir.join(path_part).exists() {
                broken.push(format!("{}: broken link `{}`", file.display(), target));
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken markdown links:\n{}",
        broken.join("\n")
    );
}

/// A token is an experiment-binary name when it is `fig` followed by a
/// digit or an underscore (so prose words like "figure" don't match),
/// continuing over alphanumerics and underscores.
fn fig_binary_tokens(markdown: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let bytes = markdown.as_bytes();
    let mut i = 0;
    while let Some(pos) = markdown[i..].find("fig") {
        let start = i + pos;
        // Must not be the tail of a longer word (e.g. "config").
        let preceded_ok =
            start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let mut end = start + 3;
        while end < bytes.len() && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_') {
            end += 1;
        }
        let token = &markdown[start..end];
        let shape_ok = token.len() > 3
            && (token.as_bytes()[3].is_ascii_digit() || token.as_bytes()[3] == b'_');
        if preceded_ok && shape_ok {
            tokens.push(token.to_string());
        }
        i = end.max(start + 3);
    }
    tokens.sort();
    tokens.dedup();
    tokens
}

#[test]
fn documented_fig_binaries_exist() {
    let bin_dir = repo_root().join("crates/bench/src/bin");
    let mut missing = Vec::new();
    for file in checked_files() {
        let content = fs::read_to_string(&file).expect("readable markdown");
        for token in fig_binary_tokens(&content) {
            if !bin_dir.join(format!("{token}.rs")).exists() {
                missing.push(format!(
                    "{}: mentions `{}` but crates/bench/src/bin/{}.rs does not exist",
                    file.display(),
                    token,
                    token
                ));
            }
        }
    }
    assert!(
        missing.is_empty(),
        "documented binaries without sources:\n{}",
        missing.join("\n")
    );
}

#[test]
fn every_fig_binary_is_documented_in_experiments_md() {
    let root = repo_root();
    let experiments =
        fs::read_to_string(root.join("docs/EXPERIMENTS.md")).expect("docs/EXPERIMENTS.md exists");
    let documented = fig_binary_tokens(&experiments);
    let mut undocumented = Vec::new();
    let bins = fs::read_dir(root.join("crates/bench/src/bin")).expect("bench bin dir");
    for entry in bins {
        let path = entry.expect("readable bin entry").path();
        let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
            continue;
        };
        if stem.starts_with("fig") && !documented.iter().any(|d| d == stem) {
            undocumented.push(stem.to_string());
        }
    }
    undocumented.sort();
    assert!(
        undocumented.is_empty(),
        "experiment binaries missing from docs/EXPERIMENTS.md: {}",
        undocumented.join(", ")
    );
}

#[test]
fn token_extraction_is_precise() {
    let text = "run fig20 and fig_bandwidth_sweep; see the figure in config, \
                prefigured notions, or [table](docs/EXPERIMENTS.md#figures)";
    assert_eq!(
        fig_binary_tokens(text),
        vec!["fig20", "fig_bandwidth_sweep"]
    );
    assert_eq!(link_targets(text), vec!["docs/EXPERIMENTS.md#figures"]);
}
