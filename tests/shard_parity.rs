//! Determinism parity for the sharded engine: running any experiment with
//! `--shards N` must produce a `SimResult` **bit-identical** to the
//! sequential engine. `SimResult`'s equality covers the full per-VM
//! records (specs, outcomes, allocation histories), migrations,
//! utilisation samples, every counter and the deterministic event count —
//! only the wall clock and the shard count itself are exempt.
//!
//! The targeted tests pin the contract on the exact quick-scale
//! configurations of the `fig_transient` and `fig_scheduler` experiments
//! (the rows other regression tests pin golden values for); the property
//! test then varies workload seed, capacity profile and shard count
//! freely.

use deflate_bench::scale::Scale;
use deflate_bench::transient_exp::{
    default_migration_cost, profiles, run_transient_engine, run_transient_placed,
    transient_workload, SchedulerVariant, TransientMode, SCHEDULER_SWEEP_MBPS,
};
use proptest::prelude::*;
use vmdeflate::cluster::manager::{ClusterConfig, PlacementKind, ReclamationMode};
use vmdeflate::cluster::sim::ClusterSimulation;
use vmdeflate::cluster::spec::{workload_from_azure, MinAllocationRule};
use vmdeflate::core::placement::PartitionScheme;
use vmdeflate::core::policy::{ProportionalDeflation, TransferPolicy};
use vmdeflate::core::resources::ResourceVector;
use vmdeflate::core::shard::ShardConfig;
use vmdeflate::hypervisor::domain::DeflationMechanism;
use vmdeflate::hypervisor::migration::MigrationCostModel;
use vmdeflate::traces::azure::{AzureTraceConfig, AzureTraceGenerator};
use vmdeflate::transient::signal::{CapacityProfile, CapacitySchedule, TransientConfig};

/// `--shards N` for N in {2, 4} is bit-identical to the sequential engine
/// on every (profile, mode) row of the quick-scale `fig_transient`
/// experiment.
#[test]
fn fig_transient_rows_are_bit_identical_across_shards() {
    let scale = Scale::Quick;
    let workload = transient_workload(scale);
    let cost = default_migration_cost();
    for profile in profiles() {
        for mode in TransientMode::ALL {
            let sequential = run_transient_engine(
                &workload,
                scale,
                mode,
                profile,
                cost,
                TransferPolicy::fifo(),
                ShardConfig::sequential(),
            );
            for shards in [2, 4] {
                let sharded = run_transient_engine(
                    &workload,
                    scale,
                    mode,
                    profile,
                    cost,
                    TransferPolicy::fifo(),
                    ShardConfig::with_shards(shards),
                );
                assert_eq!(
                    sequential,
                    sharded,
                    "fig_transient {} / {} diverged at {} shards",
                    profile.name(),
                    mode.name(),
                    shards
                );
            }
        }
    }
}

/// Same contract on the `fig_scheduler` rows — the experiment whose EDF /
/// deflate-then-migrate paths exercise staged batches, admission-control
/// rejections and the dirty-rate-aware sampling pass (the sharded
/// trace-observation fan-out). One budget is enough: policy behaviour,
/// not the budget grid, is what varies the code path.
#[test]
fn fig_scheduler_rows_are_bit_identical_across_shards() {
    let scale = Scale::Quick;
    let workload = transient_workload(scale);
    let profile = CapacityProfile::spot_market_default();
    let budget = SCHEDULER_SWEEP_MBPS[0];
    for mode in [TransientMode::Deflation, TransientMode::MigrationOnly] {
        for variant in SchedulerVariant::ALL {
            if !variant.applies_to(mode) {
                continue;
            }
            let run = |shards: usize| {
                run_transient_engine(
                    &workload,
                    scale,
                    mode,
                    profile,
                    variant.cost(budget),
                    variant.policy(),
                    ShardConfig::with_shards(shards),
                )
            };
            let sequential = run(1);
            for shards in [2, 4] {
                assert_eq!(
                    sequential,
                    run(shards),
                    "fig_scheduler {} / {} diverged at {} shards",
                    mode.name(),
                    variant.name(),
                    shards
                );
            }
        }
    }
}

/// Autoscale-enabled runs are bit-identical across shard counts too: the
/// autoscaler's decisions, scale events and stats all happen at the
/// coordinator in the engine's global event order, and `SimResult`'s
/// equality covers the full `AutoscaleStats` (latency samples included).
/// Pinned on the exact quick-scale `fig_autoscale` configurations.
#[test]
fn fig_autoscale_rows_are_bit_identical_across_shards() {
    use deflate_bench::autoscale_exp::{autoscale_profiles, AutoscaleVariant};
    use vmdeflate::cluster::spec::{paper_server_capacity, servers_for_transient_overcommitment};
    let scale = Scale::Quick;
    let workload = transient_workload(scale);
    for profile in autoscale_profiles() {
        for variant in AutoscaleVariant::ALL {
            let app = deflate_bench::autoscale_exp::elastic_app();
            let capacity = paper_server_capacity();
            let background = servers_for_transient_overcommitment(
                &workload,
                capacity,
                0.0,
                profile.mean_availability(),
            );
            let elastic =
                (app.max_replicas as f64 * app.replica_size.cpu() / capacity.cpu()).ceil() as usize;
            let servers = background + elastic;
            let schedule = CapacitySchedule::generate(&TransientConfig {
                num_servers: servers,
                transient_fraction: 1.0,
                duration_secs: scale.cluster_trace_hours() * 3600.0,
                profile,
                seed: scale.seed(),
            });
            let config = ClusterConfig {
                num_servers: servers,
                server_capacity: capacity,
                placement: PlacementKind::CosineFitness,
                partitions: PartitionScheme::None,
                mechanism: DeflationMechanism::Transparent,
            };
            let run = |shards: usize| {
                ClusterSimulation::new(
                    config.clone(),
                    ReclamationMode::Deflation(std::sync::Arc::new(
                        ProportionalDeflation::default(),
                    )),
                )
                .with_capacity_schedule(schedule.clone())
                .with_migrate_back(true)
                .with_migration_cost(default_migration_cost())
                .with_utilization_ticks(deflate_bench::autoscale_exp::AUTOSCALE_TICK_SECS)
                .with_autoscale(variant.policy(), vec![app.clone()])
                .with_shards(ShardConfig::with_shards(shards))
                .run(&workload)
            };
            let sequential = run(1);
            assert!(
                sequential.autoscale.scale_actions() > 0,
                "parity would be vacuous without scaling activity"
            );
            for shards in [2, 4] {
                let sharded = run(shards);
                assert_eq!(
                    sequential,
                    sharded,
                    "fig_autoscale {} / {} diverged at {} shards",
                    profile.name(),
                    variant.name(),
                    shards
                );
            }
        }
    }
}

/// Parity holds with telemetry enabled: every sink on (metrics,
/// profiler, JSONL event log, Chrome trace — all in memory) at shards
/// {2, 4} still reproduces the sequential telemetry-off run bit for
/// bit, and the sinks actually collected data (the case is not
/// vacuous). Spans and event logging ride the coordinator and worker
/// threads, so this is the test that would catch observation leaking
/// into the engine's event order.
#[test]
fn telemetry_enabled_runs_are_bit_identical_across_shards() {
    use deflate_bench::scale_exp::{run_scale_cell, run_scale_cell_with_telemetry, scale_workload};
    use vmdeflate::telemetry::{TelemetryEventSet, TelemetrySink, TelemetrySpec};
    let scale = Scale::Quick;
    let workload = scale_workload(scale, 400);
    let (baseline, _) = run_scale_cell(&workload, scale, ShardConfig::sequential());
    for shards in [2, 4] {
        let spec = TelemetrySpec::profiling()
            .with_event_log("unused.jsonl")
            .with_event_kinds(TelemetryEventSet::all())
            .with_chrome_trace("unused.trace.json");
        let sink = TelemetrySink::in_memory(&spec);
        let (observed, _) = run_scale_cell_with_telemetry(
            &workload,
            scale,
            ShardConfig::with_shards(shards),
            sink.clone(),
        );
        assert_eq!(
            baseline, observed,
            "telemetry-enabled run diverged at {shards} shards"
        );
        let report = sink.report();
        assert!(!report.phases.is_empty(), "profiler collected nothing");
        assert!(report.event_lines > 0, "event log collected nothing");
        assert!(
            report.phases.shards.len() >= shards,
            "per-shard worker rows missing"
        );
    }
}

/// Parity holds with the online invariant auditor on: every checker
/// enabled at shards {2, 4} still reproduces the sequential auditor-off
/// run bit for bit. The auditor runs on the coordinator after each
/// event, so this is the test that would catch a checker perturbing the
/// sharded engine's merge order — or an invariant that only holds
/// sequentially.
#[test]
fn audited_runs_are_bit_identical_across_shards() {
    use deflate_bench::scale_exp::{run_scale_cell, run_scale_cell_audited, scale_workload};
    use vmdeflate::core::audit::AuditSpec;
    let scale = Scale::Quick;
    let workload = scale_workload(scale, 400);
    let (baseline, _) = run_scale_cell(&workload, scale, ShardConfig::sequential());
    for shards in [2, 4] {
        let (observed, _) = run_scale_cell_audited(
            &workload,
            scale,
            ShardConfig::with_shards(shards),
            AuditSpec::all(),
        );
        assert_eq!(
            baseline, observed,
            "auditor-enabled run diverged at {shards} shards"
        );
    }
}

/// The parallel placement-ranking fan-out is a pure performance knob:
/// running the `fig_transient` rows under a parallel [`PlacementEngine`]
/// × shard counts {2, 4} reproduces the sequential-default run **bit for
/// bit** — the per-span argmax reduce preserves the exact first-best-score
/// pick (and its score bits) of the sequential scan, so no placement
/// decision, allocation history or counter may move.
///
/// [`PlacementEngine`]: vmdeflate::core::placement::PlacementEngine
#[test]
fn parallel_placement_engine_rows_are_bit_identical_to_sequential_default() {
    use vmdeflate::core::placement::PlacementEngine;
    let scale = Scale::Quick;
    let workload = transient_workload(scale);
    let cost = default_migration_cost();
    for profile in profiles() {
        for mode in TransientMode::ALL {
            let sequential = run_transient_engine(
                &workload,
                scale,
                mode,
                profile,
                cost,
                TransferPolicy::fifo(),
                ShardConfig::sequential(),
            );
            for shards in [2, 4] {
                let parallel = run_transient_placed(
                    &workload,
                    scale,
                    mode,
                    profile,
                    cost,
                    TransferPolicy::fifo(),
                    ShardConfig::with_shards(shards),
                    PlacementEngine::parallel(4),
                );
                assert_eq!(
                    sequential,
                    parallel,
                    "fig_transient {} / {} diverged under parallel placement at {} shards",
                    profile.name(),
                    mode.name(),
                    shards
                );
            }
        }
    }
}

/// Same contract with every telemetry sink on: parallel placement ranking
/// × shards {2, 4} × in-memory profiling/event-log/trace sinks still
/// reproduces the sequential, telemetry-off run bit for bit, and the
/// profiler actually attributed time to the worker shards (non-vacuous).
#[test]
fn parallel_placement_engine_with_telemetry_is_bit_identical() {
    use deflate_bench::scale_exp::{run_scale_cell, run_scale_cell_placed, scale_workload};
    use vmdeflate::core::placement::PlacementEngine;
    use vmdeflate::telemetry::{TelemetryEventSet, TelemetrySink, TelemetrySpec};
    let scale = Scale::Quick;
    let workload = scale_workload(scale, 400);
    let (baseline, _) = run_scale_cell(&workload, scale, ShardConfig::sequential());
    for shards in [2, 4] {
        let spec = TelemetrySpec::profiling()
            .with_event_log("unused.jsonl")
            .with_event_kinds(TelemetryEventSet::all())
            .with_chrome_trace("unused.trace.json");
        let sink = TelemetrySink::in_memory(&spec);
        let (observed, _) = run_scale_cell_placed(
            &workload,
            scale,
            ShardConfig::with_shards(shards),
            PlacementEngine::parallel(4),
            sink.clone(),
        );
        assert_eq!(
            baseline, observed,
            "parallel-placement telemetry-enabled run diverged at {shards} shards"
        );
        let report = sink.report();
        assert!(!report.phases.is_empty(), "profiler collected nothing");
        assert!(report.event_lines > 0, "event log collected nothing");
    }
}

/// **Fork determinism**: two forks of the same snapshot under the same
/// [`TransferPolicy`] are bit-identical, and forks under different
/// policies share the identical pre-fork history (the snapshot is the
/// single source of the prefix — what diverges afterwards is policy,
/// never replay noise). This is the property `fig_whatif`'s
/// model-predictive loop rests on.
#[test]
fn forks_of_one_snapshot_are_deterministic() {
    use deflate_bench::transient_exp::{dirty_aware_migration_cost, transient_simulation};
    let scale = Scale::Quick;
    let workload = transient_workload(scale);
    let profile = CapacityProfile::spot_market_default();
    let cost = dirty_aware_migration_cost(1250.0);
    let sim = |policy: TransferPolicy| {
        transient_simulation(
            &workload,
            scale,
            deflate_bench::transient_exp::TransientMode::Deflation,
            profile,
            cost,
            policy,
        )
    };
    let snapshot = sim(TransferPolicy::fifo()).checkpoint(&workload, 2.0 * 3600.0);
    for policy in [
        TransferPolicy::fifo(),
        TransferPolicy::edf().with_deflate_then_migrate(true),
    ] {
        let first = sim(policy).resume(&workload, &snapshot).expect("restores");
        let second = sim(policy).resume(&workload, &snapshot).expect("restores");
        assert_eq!(first, second, "two forks under {} diverged", policy.name());
    }
    // Different-policy forks still agree on everything decided before the
    // fork point: the committed policy name aside, their event streams
    // may only diverge after 2 h.
    let fifo = sim(TransferPolicy::fifo())
        .resume(&workload, &snapshot)
        .expect("restores");
    let edf = sim(TransferPolicy::edf())
        .resume(&workload, &snapshot)
        .expect("restores");
    let pre_fork = |result: &vmdeflate::cluster::metrics::SimResult| {
        result
            .migrations
            .iter()
            .filter(|m| m.time_secs <= 2.0 * 3600.0)
            .cloned()
            .collect::<Vec<_>>()
    };
    assert_eq!(
        pre_fork(&fifo),
        pre_fork(&edf),
        "pre-fork migration history diverged between sibling forks"
    );
}

/// Snapshots taken under sharded engines restore to the sequential
/// run's result: checkpoint at shards ∈ {2, 4}, resume sequentially
/// (and crosswise), full `SimResult` equality throughout. Together with
/// the byte-identity pin in `tests/checkpoint_restore.rs` this closes
/// the loop: sharding affects neither the bytes nor what they restore
/// to.
#[test]
fn sharded_snapshots_restore_to_the_sequential_result() {
    let scale = Scale::Quick;
    let workload = transient_workload(scale);
    let profile = CapacityProfile::spot_market_default();
    let cost = default_migration_cost();
    let sim = |shards: usize| {
        deflate_bench::transient_exp::transient_simulation(
            &workload,
            scale,
            TransientMode::Deflation,
            profile,
            cost,
            TransferPolicy::fifo(),
        )
        .with_shards(ShardConfig::with_shards(shards))
    };
    let sequential_full = sim(1).run(&workload);
    let at = 5.0 * 3600.0;
    let sequential_snap = sim(1).checkpoint(&workload, at);
    for shards in [2, 4] {
        let sharded_snap = sim(shards).checkpoint(&workload, at);
        assert_eq!(
            sequential_snap, sharded_snap,
            "snapshot bytes changed at {shards} shards"
        );
        let resumed_sequentially = sim(1).resume(&workload, &sharded_snap).expect("restores");
        assert_eq!(
            sequential_full, resumed_sequentially,
            "sequential restore of a {shards}-shard snapshot diverged"
        );
        let resumed_sharded = sim(shards)
            .resume(&workload, &sequential_snap)
            .expect("restores");
        assert_eq!(
            sequential_full, resumed_sharded,
            "{shards}-shard restore of the sequential snapshot diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Randomised parity: arbitrary trace seeds, shard counts (including
    /// counts above the server count), capacity profiles and migrate-back
    /// settings all produce the sequential result, bit for bit.
    #[test]
    fn random_configurations_are_bit_identical_across_shards(
        seed in 0u64..10_000,
        num_vms in 60usize..180,
        shards in 2usize..9,
        profile_pick in 0usize..3,
        migrate_back in 0usize..2,
    ) {
        let traces = AzureTraceGenerator::generate(&AzureTraceConfig {
            num_vms,
            duration_hours: 8.0,
            seed,
            ..Default::default()
        });
        let workload = workload_from_azure(&traces, MinAllocationRule::None);
        let capacity = ResourceVector::cpu_mem(48_000.0, 131_072.0);
        let servers = vmdeflate::cluster::spec::min_cluster_size(&workload, capacity)
            .saturating_sub(1)
            .max(2);
        let profile = match profile_pick {
            0 => CapacityProfile::square_wave_default(),
            1 => CapacityProfile::diurnal_default(),
            _ => CapacityProfile::spot_market_default(),
        };
        let schedule = CapacitySchedule::generate(&TransientConfig {
            num_servers: servers,
            transient_fraction: 1.0,
            duration_secs: 8.0 * 3600.0,
            profile,
            seed,
        });
        let config = ClusterConfig {
            num_servers: servers,
            server_capacity: capacity,
            placement: PlacementKind::CosineFitness,
            partitions: PartitionScheme::None,
            mechanism: DeflationMechanism::Transparent,
        };
        let run = |n: usize| {
            ClusterSimulation::new(
                config.clone(),
                ReclamationMode::Deflation(std::sync::Arc::new(
                    ProportionalDeflation::default(),
                )),
            )
            .with_capacity_schedule(schedule.clone())
            .with_migrate_back(migrate_back == 1)
            .with_migration_cost(
                MigrationCostModel::lan_default()
                    .with_budget_mbps(1250.0)
                    .with_deadline_secs(30.0)
                    .with_dirty_rate(800.0, 2.0),
            )
            .with_transfer_policy(TransferPolicy::edf())
            .with_utilization_ticks(1800.0)
            .with_shards(ShardConfig::with_shards(n))
            .run(&workload)
        };
        let sequential = run(1);
        let sharded = run(shards);
        prop_assert_eq!(&sequential, &sharded);
        // The deterministic event count is part of the contract.
        prop_assert_eq!(
            sequential.runtime.events_processed,
            sharded.runtime.events_processed
        );
    }
}
