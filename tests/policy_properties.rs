//! Property-based tests on the core deflation model: resource vectors,
//! deflation policies and the performance-response model.

use proptest::prelude::*;
use vmdeflate::core::perfmodel::PerfModel;
use vmdeflate::core::policy::{
    DeflationPolicy, DeterministicDeflation, PriorityDeflation, ProportionalDeflation,
    VmResourceState,
};
use vmdeflate::core::resources::{ResourceKind, ResourceVector};
use vmdeflate::core::vm::VmId;

fn arb_vector() -> impl Strategy<Value = ResourceVector> {
    (
        0.0f64..64_000.0,
        0.0f64..262_144.0,
        0.0f64..2_000.0,
        0.0f64..10_000.0,
    )
        .prop_map(|(c, m, d, n)| ResourceVector::new(c, m, d, n))
}

/// A set of deflatable-VM scalar states with consistent `min ≤ current ≤ max`.
fn arb_vm_states(max_vms: usize) -> impl Strategy<Value = Vec<VmResourceState>> {
    prop::collection::vec(
        (
            1.0f64..32_000.0, // max
            0.0f64..1.0,      // min as a fraction of max
            0.0f64..1.0,      // current as a fraction of the [min, max] span
            0.05f64..1.0,     // priority
        ),
        1..max_vms,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (max, min_frac, cur_frac, priority))| {
                let min = max * min_frac;
                let current = min + (max - min) * cur_frac;
                VmResourceState {
                    id: VmId(i as u64),
                    max,
                    min,
                    current,
                    priority,
                }
            })
            .collect()
    })
}

fn check_plan_invariants(
    policy: &dyn DeflationPolicy,
    vms: &[VmResourceState],
    demand: f64,
) -> Result<(), TestCaseError> {
    let plan = policy.plan(vms, demand);
    prop_assert_eq!(plan.targets.len(), vms.len());
    let mut total_reclaimed = 0.0;
    for (vm, (id, target)) in vms.iter().zip(plan.targets.iter()) {
        prop_assert_eq!(*id, vm.id);
        // Targets always stay within [min, max].
        prop_assert!(
            *target >= vm.min - 1e-6 && *target <= vm.max + 1e-6,
            "target {} outside [{}, {}]",
            target,
            vm.min,
            vm.max
        );
        total_reclaimed += vm.current - *target;
    }
    // Reported reclamation matches the targets.
    prop_assert!(
        (total_reclaimed - plan.reclaimed).abs() < 1e-6,
        "reported {} vs actual {}",
        plan.reclaimed,
        total_reclaimed
    );
    if demand >= 0.0 {
        // Never reclaim more than the deflatable headroom, and the shortfall
        // accounts for exactly the unmet part (binary policies may
        // over-reclaim relative to the demand, but never below a satisfied
        // demand).
        prop_assert!(plan.shortfall >= -1e-6);
        prop_assert!(total_reclaimed + plan.shortfall >= demand - 1e-6 || plan.shortfall > 0.0);
        let headroom: f64 = vms.iter().map(|v| v.deflatable_headroom()).sum();
        prop_assert!(total_reclaimed <= headroom + 1e-6);
    } else {
        // Reinflation never takes resources away from anyone.
        for (vm, (_, target)) in vms.iter().zip(plan.targets.iter()) {
            prop_assert!(*target >= vm.current - 1e-6);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn proportional_plan_invariants(vms in arb_vm_states(12), demand in -50_000.0f64..100_000.0) {
        check_plan_invariants(&ProportionalDeflation::default(), &vms, demand)?;
        check_plan_invariants(&ProportionalDeflation::by_size(), &vms, demand)?;
    }

    #[test]
    fn priority_plan_invariants(vms in arb_vm_states(12), demand in -50_000.0f64..100_000.0) {
        check_plan_invariants(&PriorityDeflation::weighted(), &vms, demand)?;
        check_plan_invariants(&PriorityDeflation::with_priority_floor(), &vms, demand)?;
    }

    #[test]
    fn deterministic_plan_invariants(vms in arb_vm_states(12), demand in -50_000.0f64..100_000.0) {
        check_plan_invariants(&DeterministicDeflation::binary(), &vms, demand)?;
        check_plan_invariants(&DeterministicDeflation::with_partial_last(), &vms, demand)?;
    }

    #[test]
    fn proportional_satisfies_feasible_demands(vms in arb_vm_states(12), frac in 0.0f64..1.0) {
        // Any demand within the total headroom is fully satisfied.
        let headroom: f64 = vms.iter().map(|v| v.deflatable_headroom()).sum();
        let demand = headroom * frac;
        let plan = ProportionalDeflation::default().plan(&vms, demand);
        prop_assert!(plan.shortfall < 1e-6, "shortfall {} for feasible demand", plan.shortfall);
    }

    #[test]
    fn vector_addition_and_subtraction_roundtrip(a in arb_vector(), b in arb_vector()) {
        let sum = a + b;
        let back = sum - b;
        for kind in ResourceKind::ALL {
            prop_assert!((back[kind] - a[kind]).abs() < 1e-6);
        }
        prop_assert!(a.saturating_sub(&b).is_non_negative());
        prop_assert!(a.min(&b).fits_within(&a.max(&b)));
    }

    #[test]
    fn cosine_similarity_is_bounded_and_symmetric(a in arb_vector(), b in arb_vector()) {
        let ab = a.cosine_similarity(&b);
        let ba = b.cosine_similarity(&a);
        prop_assert!((-1.0..=1.0).contains(&ab));
        prop_assert!((ab - ba).abs() < 1e-9);
        // Scale invariance.
        let scaled = a * 3.7;
        prop_assert!((scaled.cosine_similarity(&b) - ab).abs() < 1e-9);
    }

    #[test]
    fn perf_model_is_monotone_and_bounded(
        slack in 0.0f64..1.0,
        knee in 0.0f64..1.0,
        perf_at_knee in 0.0f64..1.0,
        elasticity in 0.1f64..3.0,
    ) {
        let m = PerfModel::new(slack, knee, perf_at_knee, elasticity);
        let mut prev = f64::INFINITY;
        for i in 0..=50 {
            let p = m.performance(i as f64 / 50.0);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(p <= prev + 1e-9);
            prev = p;
        }
        prop_assert_eq!(m.performance(0.0), 1.0);
    }
}
