//! Helpers shared by the integration-test battery (each `tests/*.rs`
//! file is its own crate; they pull this module in with `mod common;`).
//!
//! The digest pair here used to live inline in `placement_golden.rs`;
//! the checkpoint/fork battery pins snapshot *bytes* with the same hash,
//! so the helpers moved to one place. The rendering and hash must stay
//! stable: golden constants in several test files were captured through
//! them.

// Each test crate compiles its own copy of this module and typically
// uses only part of it.
#![allow(dead_code)]

use vmdeflate::cluster::metrics::SimResult;

/// FNV-1a 64-bit over a byte string — tiny, dependency-free, stable.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Bit-faithful digest of every deterministic `SimResult` field. Only the
/// wall-clock reading (and the derived events/s) is excluded — everything
/// else, down to per-VM allocation histories and the migration event log,
/// feeds the hash (`Debug` for `f64` is the shortest round-trip form, so
/// the hash is bit-faithful).
pub fn sim_result_digest(result: &SimResult) -> u64 {
    let deterministic = (
        &result.records,
        &result.counters,
        &result.transient,
        &result.scheduler,
        &result.autoscale,
        &result.migrations,
        &result.utilization,
        result.num_servers,
        result.overcommitment.to_bits(),
        &result.policy_name,
        result.runtime.events_processed,
        result.runtime.shards,
    );
    fnv1a64(format!("{deterministic:?}").as_bytes())
}

/// A tiny deterministic LCG (Numerical Recipes constants) for seeding
/// "random" checkpoint boundaries without a clock or an RNG dependency:
/// the battery wants arbitrary-looking, reproducible fractions.
pub struct Lcg(pub u64);

impl Lcg {
    /// Next raw state.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0
    }

    /// A fraction in `(0, 1)`, never exactly 0 or 1.
    pub fn fraction(&mut self) -> f64 {
        let raw = self.next_u64() >> 11; // 53 significant bits
        (raw as f64 + 0.5) / (1u64 << 53) as f64
    }
}
