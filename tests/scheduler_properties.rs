//! Property tests for the transfer scheduler: EDF admission control must
//! be *sound* — a transfer it books never resolves after its source's
//! reclamation deadline, under any workload shape, budget or deadline —
//! and the FIFO policy must remain byte-for-byte the behaviour the
//! cluster had before the scheduler existed.

use proptest::prelude::*;
use std::sync::Arc;
use vmdeflate::cluster::prelude::*;
use vmdeflate::core::placement::PartitionScheme;
use vmdeflate::core::policy::ProportionalDeflation;
use vmdeflate::core::resources::ResourceVector;
use vmdeflate::core::vm::{ServerId, VmClass, VmId, VmSpec};
use vmdeflate::hypervisor::domain::DeflationMechanism;
use vmdeflate::traces::azure::{AzureTraceConfig, AzureTraceGenerator};
use vmdeflate::transient::signal::{CapacityProfile, CapacitySchedule, TransientConfig};

fn config(num_servers: usize, capacity: ResourceVector) -> ClusterConfig {
    ClusterConfig {
        num_servers,
        server_capacity: capacity,
        // First-fit keeps every VM on server 0 until it is full, so the
        // reclamation below hits all of them at once.
        placement: PlacementKind::FirstFit,
        partitions: PartitionScheme::None,
        mechanism: DeflationMechanism::Transparent,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The scheduler invariant of the EDF policy: **no admitted transfer
    /// resolves after its source's reclamation deadline.** Random VM
    /// populations (size and recent CPU utilisation), random budgets and
    /// deadlines; every `PendingMigration` the reclamation hands back must
    /// have `event_secs ≤ reclaim time + deadline`, and completing them
    /// all must produce zero deadline aborts.
    #[test]
    fn edf_admitted_transfers_always_beat_their_deadline(
        vms in prop::collection::vec((2048.0f64..16_384.0, 0.0f64..1.0), 1..8),
        budget in 100.0f64..1200.0,
        deadline in 5.0f64..120.0,
        deflate_first in 0usize..2,
    ) {
        let now = 1000.0;
        // One roomy server per VM plus the shared source server.
        let capacity = ResourceVector::cpu_mem(48_000.0, 256.0 * 1024.0);
        let model = MigrationCostModel {
            link_bandwidth_mbps: budget,
            dirty_page_overhead: 1.0,
            setup_floor_secs: 0.5,
            per_server_bandwidth_mbps: budget,
            reclaim_deadline_secs: deadline,
            ..MigrationCostModel::instant()
        }
        .with_dirty_rate(0.6 * budget, 1.0);
        let policy = TransferPolicy::edf().with_deflate_then_migrate(deflate_first == 1);
        let mut cluster = ClusterManager::new(
            &config(vms.len() + 1, capacity),
            ReclamationMode::Deflation(Arc::new(ProportionalDeflation::default())),
        )
        .with_migration_cost(model)
        .with_transfer_policy(policy);

        for (i, &(mem, util)) in vms.iter().enumerate() {
            let spec = VmSpec::deflatable(
                VmId(i as u64),
                VmClass::Interactive,
                ResourceVector::cpu_mem(4_000.0, mem),
            )
            // A floor keeps deflation from absorbing the reclamation, so
            // the migration rung actually runs.
            .with_min_allocation(ResourceVector::cpu_mem(3_000.0, mem));
            prop_assert!(cluster.place_vm(spec).is_placed());
            for _ in 0..4 {
                cluster.observe_vm_utilization(VmId(i as u64), util);
            }
        }

        let outcome = cluster.reclaim_capacity(ServerId(0), 0.0, now);
        let stats = cluster.scheduler_stats();
        prop_assert_eq!(stats.booked, outcome.started.len());
        for pending in &outcome.started {
            prop_assert!(
                pending.event_secs <= now + deadline + 1e-9,
                "transfer of {} resolves at {} past deadline {}",
                pending.vm, pending.event_secs, now + deadline
            );
            prop_assert!(pending.start_secs >= now);
        }
        prop_assert!(cluster.check_invariants());
        // Deliver every completion: none may abort — EDF only books
        // transfers that finish in time.
        for pending in &outcome.started {
            cluster.complete_migration(pending.id, pending.event_secs);
        }
        prop_assert_eq!(cluster.transient_counters().migration_aborts, 0);
        prop_assert_eq!(
            cluster.transient_counters().migration_rejections,
            stats.rejected
        );
        prop_assert!(cluster.check_invariants());
    }
}

/// FIFO scheduling through the `TransferScheduler` must be *bit-identical*
/// to the greedy per-migration booking it replaced: the same trace-driven
/// run, executed twice (and once more through the explicit-policy entry
/// point), yields equal `SimResult`s including every migration timestamp.
#[test]
fn fifo_runs_are_reproducible_and_explicit_policy_matches_default() {
    let traces = AzureTraceGenerator::generate(&AzureTraceConfig {
        num_vms: 120,
        duration_hours: 8.0,
        seed: 4242,
        ..Default::default()
    });
    let workload = workload_from_azure(&traces, MinAllocationRule::None);
    let servers = min_cluster_size(&workload, paper_server_capacity());
    let schedule = CapacitySchedule::generate(&TransientConfig {
        num_servers: servers,
        transient_fraction: 1.0,
        duration_secs: 8.0 * 3600.0,
        profile: CapacityProfile::spot_market_default(),
        seed: 11,
    });
    let run = |policy: Option<TransferPolicy>| {
        let mut sim = ClusterSimulation::new(
            ClusterConfig::paper_default(servers),
            ReclamationMode::MigrationOnly,
        )
        .with_capacity_schedule(schedule.clone())
        .with_migrate_back(true)
        .with_migration_cost(MigrationCostModel::lan_default().with_deadline_secs(30.0));
        if let Some(policy) = policy {
            sim = sim.with_transfer_policy(policy);
        }
        sim.run(&workload)
    };
    let default_run = run(None);
    let explicit_fifo = run(Some(TransferPolicy::fifo()));
    let again = run(None);
    assert_eq!(default_run, again, "runs must be deterministic");
    assert_eq!(
        default_run, explicit_fifo,
        "explicit FIFO must equal the default policy bit-for-bit"
    );
}
