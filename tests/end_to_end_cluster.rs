//! End-to-end integration tests: synthetic trace → cluster workload →
//! trace-driven simulation → the paper's headline cluster-level claims.

use std::sync::Arc;
use vmdeflate::cluster::prelude::*;
use vmdeflate::core::placement::PartitionScheme;
use vmdeflate::core::policy::{DeterministicDeflation, PriorityDeflation, ProportionalDeflation};
use vmdeflate::core::pricing::{PricingPolicy, RateCard};
use vmdeflate::hypervisor::domain::DeflationMechanism;
use vmdeflate::traces::azure::{AzureTraceConfig, AzureTraceGenerator};

fn workload(num_vms: usize, seed: u64, min_rule: MinAllocationRule) -> Vec<WorkloadVm> {
    let traces = AzureTraceGenerator::generate(&AzureTraceConfig {
        num_vms,
        duration_hours: 12.0,
        seed,
        ..Default::default()
    });
    workload_from_azure(&traces, min_rule)
}

fn config_at(workload: &[WorkloadVm], overcommitment: f64) -> ClusterConfig {
    let capacity = paper_server_capacity();
    let servers = servers_for_overcommitment(workload, capacity, overcommitment);
    ClusterConfig {
        num_servers: servers,
        server_capacity: capacity,
        placement: PlacementKind::CosineFitness,
        partitions: PartitionScheme::None,
        mechanism: DeflationMechanism::Transparent,
    }
}

#[test]
fn headline_claim_deflation_nearly_eliminates_preemptions() {
    // §7.4.1 / Figure 20: at 50% overcommitment deflation keeps the failure
    // probability near zero while the preemption baseline preempts a sizable
    // fraction of low-priority VMs.
    let workload = workload(700, 101, MinAllocationRule::None);
    let config = config_at(&workload, 0.5);

    let deflation = ClusterSimulation::new(
        config.clone(),
        ReclamationMode::Deflation(Arc::new(ProportionalDeflation::default())),
    )
    .run(&workload);
    let preemption = ClusterSimulation::new(config, ReclamationMode::Preemption).run(&workload);

    assert!(
        deflation.failure_probability() < 0.02,
        "deflation failure probability {}",
        deflation.failure_probability()
    );
    assert!(
        preemption.failure_probability() > 5.0 * deflation.failure_probability(),
        "preemption ({}) should fail far more often than deflation ({})",
        preemption.failure_probability(),
        deflation.failure_probability()
    );
}

#[test]
fn headline_claim_throughput_loss_is_small_and_priority_policies_reduce_it() {
    // §7.4.2 / Figure 21: small throughput loss at moderate overcommitment;
    // priority-aware policies lose less than plain proportional.
    let plain_workload = workload(700, 202, MinAllocationRule::None);
    let config = config_at(&plain_workload, 0.5);
    let proportional = ClusterSimulation::new(
        config.clone(),
        ReclamationMode::Deflation(Arc::new(ProportionalDeflation::default())),
    )
    .run(&plain_workload);

    let priority_workload = workload(700, 202, MinAllocationRule::PriorityTimesMax);
    let priority = ClusterSimulation::new(
        config_at(&priority_workload, 0.5),
        ReclamationMode::Deflation(Arc::new(PriorityDeflation::default())),
    )
    .run(&priority_workload);
    let deterministic = ClusterSimulation::new(
        config,
        ReclamationMode::Deflation(Arc::new(DeterministicDeflation::binary())),
    )
    .run(&plain_workload);

    assert!(
        proportional.mean_throughput_loss() < 0.08,
        "proportional loss {}",
        proportional.mean_throughput_loss()
    );
    assert!(
        priority.mean_throughput_loss() <= proportional.mean_throughput_loss() + 0.01,
        "priority loss {} should not exceed proportional {}",
        priority.mean_throughput_loss(),
        proportional.mean_throughput_loss()
    );
    assert!(deterministic.mean_throughput_loss() <= 1.0);
}

#[test]
fn headline_claim_overcommitment_raises_per_server_revenue() {
    // §7.4.3 / Figure 22: static pricing revenue per server grows with
    // overcommitment; priority pricing earns more than static.
    let workload = workload(700, 303, MinAllocationRule::None);
    let rates = RateCard::default();
    let static_pricing = PricingPolicy::static_default();

    let run = |oc: f64| {
        ClusterSimulation::new(
            config_at(&workload, oc),
            ReclamationMode::Deflation(Arc::new(ProportionalDeflation::default())),
        )
        .run(&workload)
    };
    let base = run(0.0);
    let over = run(0.5);
    let base_rev = base.deflatable_revenue_per_server(&static_pricing, &rates);
    let over_rev = over.deflatable_revenue_per_server(&static_pricing, &rates);
    assert!(
        over_rev > base_rev * 1.1,
        "per-server revenue should grow with overcommitment: {base_rev} -> {over_rev}"
    );
    // Priority pricing charges more than the flat 0.2× discount overall.
    let priority_rev = over.deflatable_revenue_per_server(&PricingPolicy::PriorityBased, &rates);
    assert!(
        priority_rev > over_rev,
        "priority pricing {priority_rev} should beat static {over_rev}"
    );
}

#[test]
fn partitioned_cluster_still_admits_and_isolates_priorities() {
    let workload = workload(500, 404, MinAllocationRule::PriorityTimesMax);
    let capacity = paper_server_capacity();
    let servers = servers_for_overcommitment(&workload, capacity, 0.4).max(4);
    let config = ClusterConfig {
        num_servers: servers,
        server_capacity: capacity,
        placement: PlacementKind::CosineFitness,
        partitions: PartitionScheme::ByPriority { pools: 4 },
        mechanism: DeflationMechanism::Transparent,
    };
    let result = ClusterSimulation::new(
        config,
        ReclamationMode::Deflation(Arc::new(PriorityDeflation::default())),
    )
    .run(&workload);
    // Partitioning may reject a few more VMs (full pools) but must stay sane.
    assert!(result.failure_probability() < 0.3);
    assert!(result.mean_throughput_loss() < 0.2);
}

#[test]
fn every_record_is_consistent() {
    let workload = workload(400, 505, MinAllocationRule::None);
    let result = ClusterSimulation::new(
        config_at(&workload, 0.3),
        ReclamationMode::Deflation(Arc::new(ProportionalDeflation::default())),
    )
    .run(&workload);
    assert_eq!(result.records.len(), workload.len());
    for record in &result.records {
        match record.outcome {
            VmOutcome::Rejected => assert!(record.allocation_history.is_empty()),
            _ => {
                assert!(!record.allocation_history.is_empty());
                let f = record.mean_allocation_fraction();
                assert!((0.0..=1.0 + 1e-9).contains(&f));
                assert!((0.0..=1.0).contains(&record.throughput_loss()));
            }
        }
        assert!(record.hours_run() >= 0.0);
        assert!(record.revenue(&PricingPolicy::static_default(), &RateCard::default()) >= 0.0);
    }
    // Counters line up with records.
    assert_eq!(
        result.counters.rejected,
        result
            .records
            .iter()
            .filter(|r| matches!(r.outcome, VmOutcome::Rejected))
            .count()
    );
}
