//! Integration tests asserting the paper's application-level claims on the
//! simulated testbed (Figures 3, 14, 16–19), run at quick scale.

use vmdeflate::appsim::prelude::*;
use vmdeflate::hypervisor::domain::DeflationMechanism;

#[test]
fn figure3_microservice_and_batch_apps_tolerate_uniform_deflation_differently() {
    let specjbb = ApplicationProfile::specjbb();
    let memcached = ApplicationProfile::memcached();
    // "Different applications have different amounts of slack (with SpecJBB
    // not exhibiting any slack at all)".
    assert_eq!(specjbb.model.slack, 0.0);
    assert!(memcached.model.slack >= 0.3);
    // At 50% uniform deflation memcached still performs near its peak while
    // SpecJBB has lost a substantial fraction.
    assert!(memcached.performance(0.5) > 0.85);
    assert!(specjbb.performance(0.5) < 0.75);
}

#[test]
fn figure14_hybrid_memory_deflation_tracks_the_paper() {
    let exp = SpecJbbMemoryExperiment::default();
    // "The performance with both transparent and hybrid deflation is largely
    // unaffected up to 40% deflation, and hybrid deflation improves
    // performance by about 10%."
    let t40 = exp.normalized_response_time(DeflationMechanism::Transparent, 0.40);
    let h40 = exp.normalized_response_time(DeflationMechanism::Hybrid, 0.40);
    assert!(t40 < 1.35, "transparent at 40%: {t40}");
    assert!(h40 < 1.05, "hybrid at 40%: {h40}");
    assert!(
        t40 - h40 >= 0.05,
        "hybrid advantage too small: {t40} vs {h40}"
    );
}

#[test]
fn figure16_wikipedia_degrades_gracefully_until_70_percent() {
    let mut config = MultiTierConfig::wikipedia(25.0, 99);
    // Scaled-down load with the same offered-load ratio for test speed.
    config.workload.rate_per_sec = 200.0;
    config.cores = 7.5;
    let base = MultiTierApp::run(&config, 0.0);
    let at_50 = MultiTierApp::run(&config, 0.5);
    let at_70 = MultiTierApp::run(&config, 0.7);
    let at_90 = MultiTierApp::run(&config, 0.9);
    // Mean response time roughly doubles (not explodes) at 50–70% deflation.
    assert!(at_50.mean() < 2.5 * base.mean());
    assert!(at_70.mean() < 4.0 * base.mean());
    // Deep deflation is clearly worse than 70%.
    assert!(at_90.mean() > at_70.mean());
    // p99 grows but stays within the timeout at 70%.
    assert!(at_70.p99() <= 15.0);
}

#[test]
fn figure17_requests_served_collapses_only_at_extreme_deflation() {
    let mut config = MultiTierConfig::wikipedia(25.0, 7);
    config.workload.rate_per_sec = 200.0;
    config.cores = 7.5;
    let served_50 = MultiTierApp::run(&config, 0.5).served_fraction();
    let served_70 = MultiTierApp::run(&config, 0.7).served_fraction();
    let served_97 = MultiTierApp::run(&config, 0.9667).served_fraction();
    assert!(served_50 > 0.99, "50%: {served_50}");
    assert!(served_70 > 0.95, "70%: {served_70}");
    assert!(served_97 < served_70, "97% should drop requests");
}

#[test]
fn figure18_social_network_holds_to_50_percent_then_breaks() {
    let app = SocialNetworkApp::paper_configuration(500.0);
    assert_eq!(app.services().len(), 30);
    assert_eq!(app.deflatable_count(), 22);
    let base = app.run(0.0, 8_000, 1);
    let at_50 = app.run(0.5, 8_000, 2);
    let at_65 = app.run(0.65, 8_000, 3);
    assert!(at_50.median() < 4.0 * base.median());
    assert!(
        at_65.median() > 5.0 * at_50.median(),
        "degradation should be abrupt beyond 50-60%: {} vs {}",
        at_65.median(),
        at_50.median()
    );
    assert!(at_65.p99() > at_65.median());
}

#[test]
fn figure19_deflation_aware_lb_cuts_tail_latency() {
    let config = WebClusterConfig::figure19(25.0, 3);
    for deflation in [0.7, 0.8] {
        let vanilla = WebCluster::run(&config, LbPolicy::Vanilla, deflation);
        let aware = WebCluster::run(&config, LbPolicy::DeflationAware, deflation);
        let improvement = 1.0 - aware.p90() / vanilla.p90().max(1e-9);
        assert!(
            improvement > 0.05,
            "at {deflation} deflation the aware LB should cut the tail: vanilla {} aware {}",
            vanilla.p90(),
            aware.p90()
        );
    }
}
