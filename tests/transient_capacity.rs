//! Integration tests for the transient-capacity subsystem: provider-side
//! reclamation events, the cluster-wide deflation response, migration
//! fallback, and reinflation conservation across reclaim→restore cycles.

use proptest::prelude::*;
use std::sync::Arc;
use vmdeflate::cluster::prelude::*;
use vmdeflate::core::placement::PartitionScheme;
use vmdeflate::core::policy::ProportionalDeflation;
use vmdeflate::core::resources::ResourceVector;
use vmdeflate::core::vm::{Priority, ServerId, VmClass, VmId, VmSpec};
use vmdeflate::hypervisor::domain::DeflationMechanism;
use vmdeflate::traces::azure::{AzureTraceConfig, AzureTraceGenerator};
use vmdeflate::transient::signal::{CapacityProfile, CapacitySchedule, TransientConfig};

fn cluster_config(num_servers: usize, capacity: ResourceVector) -> ClusterConfig {
    ClusterConfig {
        num_servers,
        server_capacity: capacity,
        placement: PlacementKind::CosineFitness,
        partitions: PartitionScheme::None,
        mechanism: DeflationMechanism::Transparent,
    }
}

fn deflation_mode() -> ReclamationMode {
    ReclamationMode::Deflation(Arc::new(ProportionalDeflation::default()))
}

/// The headline scenario end-to-end: on a trace-driven run with a
/// non-trivial capacity profile, deflation mode achieves strictly lower
/// reclamation-failure probability than preemption mode on the same seed,
/// and migration events are recorded in the result.
#[test]
fn deflation_absorbs_reclamations_preemption_does_not() {
    let traces = AzureTraceGenerator::generate(&AzureTraceConfig {
        num_vms: 200,
        duration_hours: 12.0,
        seed: 41,
        ..Default::default()
    });
    let workload = workload_from_azure(&traces, MinAllocationRule::None);
    let capacity = paper_server_capacity();
    let servers = min_cluster_size(&workload, capacity);
    let schedule = CapacitySchedule::generate(&TransientConfig {
        num_servers: servers,
        transient_fraction: 1.0,
        duration_secs: 12.0 * 3600.0,
        profile: CapacityProfile::SquareWave {
            period_secs: 2.0 * 3600.0,
            keep_fraction: 0.45,
            duty: 0.35,
        },
        seed: 41,
    });
    assert!(schedule.reclaim_count() > 0, "profile must be non-trivial");

    let run = |mode: ReclamationMode| {
        ClusterSimulation::new(cluster_config(servers, capacity), mode)
            .with_capacity_schedule(schedule.clone())
            .with_migrate_back(true)
            .run(&workload)
    };
    let deflation = run(deflation_mode());
    let preemption = run(ReclamationMode::Preemption);

    assert!(
        deflation.failure_probability() < preemption.failure_probability(),
        "deflation failure probability {} must be strictly below preemption's {}",
        deflation.failure_probability(),
        preemption.failure_probability()
    );
    assert_eq!(deflation.transient.reclaim_events, schedule.reclaim_count());
    // The deflation run either absorbed reclamations in place or migrated —
    // and every migration shows up in the result.
    assert!(deflation.transient.absorbed_by_deflation > 0 || !deflation.migrations.is_empty());
    assert_eq!(
        deflation.migrations.len(),
        deflation.transient.migrations + deflation.transient.migrations_back
    );
    for m in &deflation.migrations {
        assert_ne!(m.from, m.to);
    }
}

/// Identical seeds and schedules give bit-identical results — the event
/// queue's (time, kind, id) total order leaves no room for tie ambiguity.
#[test]
fn transient_runs_are_deterministic() {
    let traces = AzureTraceGenerator::generate(&AzureTraceConfig {
        num_vms: 120,
        duration_hours: 8.0,
        seed: 17,
        ..Default::default()
    });
    let workload = workload_from_azure(&traces, MinAllocationRule::None);
    let capacity = paper_server_capacity();
    let servers = min_cluster_size(&workload, capacity);
    let schedule = CapacitySchedule::generate(&TransientConfig {
        num_servers: servers,
        duration_secs: 8.0 * 3600.0,
        profile: CapacityProfile::spot_market_default(),
        seed: 17,
        ..Default::default()
    });
    let run = || {
        ClusterSimulation::new(cluster_config(servers, capacity), deflation_mode())
            .with_capacity_schedule(schedule.clone())
            .with_utilization_ticks(900.0)
            .with_migrate_back(true)
            .run(&workload)
    };
    assert_eq!(run(), run());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation across a full reclaim→restore cycle: the capacity
    /// invariant holds at every step, no VM ever exceeds its spec, and every
    /// surviving VM returns to its pre-reclaim allocation once the provider
    /// gives the capacity back.
    #[test]
    fn reclaim_restore_cycle_conserves_allocations(
        vms in prop::collection::vec(
            (1.0f64..4.0, 1024.0f64..6144.0, 0.1f64..0.9),
            1..10,
        ),
        keep in 0.3f64..0.95,
    ) {
        let capacity = ResourceVector::cpu_mem(16_000.0, 32_768.0);
        let mut cluster = ClusterManager::new(&cluster_config(3, capacity), deflation_mode());
        let mut placed: Vec<VmId> = Vec::new();
        for (i, &(cores, mem, priority)) in vms.iter().enumerate() {
            let spec = VmSpec::deflatable(
                VmId(i as u64),
                VmClass::Interactive,
                ResourceVector::cpu_mem(cores * 1000.0, mem),
            )
            .with_priority(Priority::new(priority));
            if cluster.place_vm(spec).is_placed() {
                placed.push(VmId(i as u64));
            }
        }
        prop_assert!(cluster.check_invariants());

        // Pre-reclaim snapshot. The cluster is sized so nothing is deflated
        // at rest; skip the (pathological-placement) case where it is.
        let pre: Vec<(VmId, f64)> = cluster.running_allocation_fractions();
        if pre.iter().any(|&(_, f)| f < 1.0 - 1e-9) {
            return Ok(());
        }

        // Reclaim part of server 0, then give it back.
        let reclaim = cluster.reclaim_capacity(ServerId(0), keep, 0.0);
        prop_assert!(cluster.check_invariants(), "invariant broken after reclaim");
        prop_assert!((cluster.capacity_fraction(ServerId(0)) - keep).abs() < 1e-9);
        prop_assert!((cluster.capacity_fraction(ServerId(1)) - 1.0).abs() < 1e-9);
        for (vm, fraction) in cluster.running_allocation_fractions() {
            prop_assert!(
                fraction <= 1.0 + 1e-9,
                "vm {vm} above its spec mid-cycle: {fraction}"
            );
        }
        let restore = cluster.restore_capacity(ServerId(0), 1.0, true, 0.0);
        prop_assert!(cluster.check_invariants(), "invariant broken after restore");
        prop_assert!((cluster.capacity_fraction(ServerId(0)) - 1.0).abs() < 1e-9);
        prop_assert!(restore.victims.is_empty(), "restore must never evict");

        // Every surviving VM is back at its pre-reclaim (full) allocation.
        let post: Vec<(VmId, f64)> = cluster.running_allocation_fractions();
        for &vm in &placed {
            if reclaim.victims.contains(&vm) {
                prop_assert!(
                    cluster.locate(vm).is_none(),
                    "evicted vm {vm} still located"
                );
                continue;
            }
            let fraction = post.iter().find(|&&(id, _)| id == vm).map(|&(_, f)| f);
            prop_assert_eq!(
                fraction, Some(1.0),
                "surviving vm {} not restored to pre-reclaim allocation", vm
            );
        }
        prop_assert_eq!(post.len(), placed.len() - reclaim.victims.len());
    }
}
