//! # vmdeflate
//!
//! Umbrella crate for the `vmdeflate` workspace: a reproduction of
//! *"Cloud-scale VM Deflation for Running Interactive Applications On
//! Transient Servers"* (Fuerst et al., HPDC 2020).
//!
//! This crate simply re-exports the workspace member crates under short
//! module names so examples and downstream users can depend on a single
//! crate:
//!
//! * [`core`] — resource vectors, VM model, deflation/placement/pricing policies.
//! * [`hypervisor`] — simulated KVM/cgroups substrate and deflation mechanisms.
//! * [`traces`] — synthetic Azure/Alibaba trace generators and feasibility analysis.
//! * [`appsim`] — request-level application and load-balancer simulators.
//! * [`transient`] — provider-side capacity signals and the typed simulation event engine.
//! * [`autoscale`] — deflation-aware elastic autoscaling of replica pools.
//! * [`cluster`] — cluster manager, local controllers and the discrete-event simulator.
//! * [`telemetry`] — metrics registry, engine phase profiler and structured run traces.

pub use deflate_appsim as appsim;
pub use deflate_autoscale as autoscale;
pub use deflate_cluster as cluster;
pub use deflate_core as core;
pub use deflate_hypervisor as hypervisor;
pub use deflate_telemetry as telemetry;
pub use deflate_traces as traces;
pub use deflate_transient as transient;

/// Workspace version string.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::VERSION.is_empty());
    }
}
